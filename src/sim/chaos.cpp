#include "sim/chaos.h"

#include <sstream>

#include "common/json.h"
#include "common/logging.h"
#include "workloads/attack_programs.h"
#include "workloads/workloads.h"

namespace spt {

namespace {

/** Stable per-cell fault seed: mixes the campaign seed with the
 *  cell coordinates so no two cells replay the same schedule, and
 *  the schedule of a cell never depends on which other cells the
 *  campaign includes. */
uint64_t
cellSeed(uint64_t base, std::size_t w, std::size_t e, std::size_t s)
{
    uint64_t x = base;
    x = x * 1000003ULL + (w + 1) * 8191ULL;
    x = x * 1000003ULL + (e + 1) * 127ULL;
    x = x * 1000003ULL + (s + 1);
    return x;
}

/** What a grid slot means; parallel to the RunJob vector. */
struct Cell {
    std::size_t workload;
    std::size_t engine;   ///< index into cfg.engines; unused for
                          ///< mutation cells
    int site;             ///< FaultSite index, -1 = fault-free
    bool mutation = false;
};

bool
archEquivalent(const RunOutcome &a, const RunOutcome &b)
{
    return a.arch_regs == b.arch_regs &&
           a.result.instructions == b.result.instructions &&
           a.result.halted == b.result.halted;
}

uint64_t
injectedCount(const RunOutcome &out)
{
    uint64_t n = 0;
    for (const auto &[name, value] : out.fault_counters)
        if (name.size() > 9 &&
            name.compare(name.size() - 9, 9, ".injected") == 0)
            n += value;
    return n;
}

EngineConfig
mutatedSptConfig()
{
    EngineConfig cfg;
    cfg.scheme = ProtectionScheme::kSpt;
    cfg.spt.method = UntaintMethod::kBackward;
    cfg.spt.shadow = ShadowKind::kShadowL1;
    cfg.spt.broadcast_width = 3;
    cfg.spt.mutation = SptConfig::Mutation::kLeakyMemGate;
    return cfg;
}

} // namespace

ChaosResult
runChaosCampaign(const ChaosConfig &cfg)
{
    SPT_ASSERT(!cfg.workloads.empty() && !cfg.engines.empty(),
               "chaos campaign needs workloads and engines");
    std::vector<FaultSite> sites = cfg.faults;
    if (sites.empty())
        for (std::size_t s = 0; s < kNumFaultSites; ++s)
            sites.push_back(static_cast<FaultSite>(s));

    std::vector<RunJob> grid;
    std::vector<Cell> cells;
    for (std::size_t w = 0; w < cfg.workloads.size(); ++w) {
        const ChaosWorkload &wl = cfg.workloads[w];
        SPT_ASSERT(wl.program != nullptr,
                   "chaos workload " << wl.name << " has no program");
        for (std::size_t e = 0; e < cfg.engines.size(); ++e) {
            const NamedConfig &eng = cfg.engines[e];
            RunJob job;
            job.program = wl.program;
            job.engine = eng.engine;
            job.attack_model = cfg.model;
            job.max_cycles = cfg.max_cycles;
            job.invariants = true;
            job.label = wl.name + "/" + eng.name + "/baseline";
            grid.push_back(job);
            cells.push_back({w, e, -1, false});
            for (std::size_t s = 0; s < sites.size(); ++s) {
                RunJob faulted = job;
                faulted.faults.seed = cellSeed(cfg.seed, w, e, s);
                faulted.faults.set(sites[s], cfg.rate_ppm);
                faulted.label = wl.name + "/" + eng.name + "/" +
                                faultSiteName(sites[s]);
                grid.push_back(faulted);
                cells.push_back(
                    {w, e, static_cast<int>(sites[s]), false});
            }
        }
    }
    const std::size_t mutation_begin = grid.size();
    if (cfg.mutate) {
        const EngineConfig mutated = mutatedSptConfig();
        for (std::size_t w = 0; w < cfg.workloads.size(); ++w) {
            RunJob job;
            job.program = cfg.workloads[w].program;
            job.engine = mutated;
            job.attack_model = cfg.model;
            job.max_cycles = cfg.max_cycles;
            job.invariants = true;
            job.label = cfg.workloads[w].name + "/" +
                        engineConfigName(mutated) + "/mutation";
            grid.push_back(job);
            cells.push_back({w, 0, -1, true});
        }
    }

    ExpRunner runner(cfg.jobs);
    RunnerPolicy policy;
    policy.keep_going = true;
    policy.capture_evidence = true;
    const std::vector<RunOutcome> outcomes =
        runner.run(grid, policy);

    ChaosResult result;
    ChaosSummary &sum = result.summary;
    sum.runs = outcomes.size();
    sum.mutation_ran = cfg.mutate;

    // Index of each cell's fault-free baseline for the equivalence
    // check: the campaign emits it immediately before its fault
    // cells, so scan backwards.
    const auto baselineOf = [&](std::size_t i) {
        while (cells[i].site >= 0)
            --i;
        return i;
    };

    JsonWriter jw;
    jw.beginObject();
    jw.key("campaign").beginObject();
    jw.field("seed", cfg.seed);
    jw.field("rate_ppm", static_cast<uint64_t>(cfg.rate_ppm));
    jw.field("model", cfg.model == AttackModel::kSpectre
                          ? "spectre"
                          : "futuristic");
    jw.field("max_cycles", cfg.max_cycles);
    jw.key("workloads").beginArray();
    for (const ChaosWorkload &wl : cfg.workloads)
        jw.value(wl.name);
    jw.endArray();
    jw.key("engines").beginArray();
    for (const NamedConfig &eng : cfg.engines)
        jw.value(eng.name);
    jw.endArray();
    jw.key("sites").beginArray();
    for (const FaultSite site : sites)
        jw.value(faultSiteName(site));
    jw.endArray();
    jw.endObject();

    jw.key("cells").beginArray();
    for (std::size_t i = 0; i < mutation_begin; ++i) {
        const Cell &cell = cells[i];
        const RunOutcome &out = outcomes[i];
        jw.beginObject();
        jw.field("workload", cfg.workloads[cell.workload].name);
        jw.field("engine", cfg.engines[cell.engine].name);
        jw.field("site", cell.site < 0
                             ? "none"
                             : faultSiteName(
                                   static_cast<FaultSite>(cell.site)));
        jw.field("status", runStatusName(out.status));
        jw.field("termination",
                 terminationName(out.result.termination));
        jw.field("cycles", out.result.cycles);
        jw.field("instructions", out.result.instructions);
        jw.field("checksum", out.arch_regs[kChecksumReg]);
        const uint64_t injected = injectedCount(out);
        jw.field("faults_injected", injected);
        sum.faults_injected += injected;
        switch (out.status) {
          case RunStatus::kOk:
            break;
          case RunStatus::kViolation:
            ++sum.violations;
            break;
          case RunStatus::kTimeout:
          case RunStatus::kLivelock:
          case RunStatus::kCrash:
            ++sum.failures;
            break;
        }
        if (cell.site >= 0) {
            const RunOutcome &base = outcomes[baselineOf(i)];
            const bool match = base.status == RunStatus::kOk
                                   ? archEquivalent(out, base)
                                   : true; // baseline failure is
                                           // already counted
            jw.field("arch_match", match);
            if (!match)
                ++sum.arch_divergences;
        }
        if (!out.error.empty())
            jw.field("error", out.error);
        jw.endObject();
        if (out.status == RunStatus::kViolation ||
            out.status == RunStatus::kCrash)
            result.diagnostics.emplace_back(
                out.job_desc, out.diagnostics_json.empty()
                                  ? std::string("[]")
                                  : out.diagnostics_json);
    }
    jw.endArray();

    if (cfg.mutate) {
        // The negative control detects the seeded bug iff at least
        // one workload drove the leaky gate AND every run that
        // opened the gate was flagged; a gate that opened silently
        // is a checker miss.
        uint64_t detections = 0;
        uint64_t misses = 0;
        jw.key("mutation").beginArray();
        for (std::size_t i = mutation_begin; i < outcomes.size();
             ++i) {
            const RunOutcome &out = outcomes[i];
            const uint64_t gate_opens =
                out.counter("mutation.leaky_gate_opens");
            const bool flagged =
                out.status == RunStatus::kViolation;
            if (flagged)
                ++detections;
            else if (gate_opens > 0)
                ++misses;
            jw.beginObject();
            jw.field("workload",
                     cfg.workloads[cells[i].workload].name);
            jw.field("status", runStatusName(out.status));
            jw.field("gate_opens", gate_opens);
            jw.field("detected", flagged);
            jw.endObject();
            if (flagged)
                result.diagnostics.emplace_back(
                    out.job_desc, out.diagnostics_json.empty()
                                      ? std::string("[]")
                                      : out.diagnostics_json);
        }
        jw.endArray();
        sum.mutation_detected = detections > 0 && misses == 0;
    }

    jw.key("summary").beginObject();
    jw.field("runs", sum.runs);
    jw.field("faults_injected", sum.faults_injected);
    jw.field("violations", sum.violations);
    jw.field("arch_divergences", sum.arch_divergences);
    jw.field("failures", sum.failures);
    jw.field("clean", sum.clean());
    if (cfg.mutate)
        jw.field("mutation_detected", sum.mutation_detected);
    jw.endObject();
    jw.endObject();
    result.json = jw.str();
    return result;
}

std::vector<ChaosWorkload>
quickChaosWorkloads()
{
    // Small-footprint builds: a quick campaign must finish in CI
    // seconds, and every behavior class the fault sites touch
    // (pointer chasing, indirect dispatch, hashing, call/return,
    // constant-time straight-line, sorting networks, and a real
    // transient-attack victim) is represented.
    struct Registry {
        std::vector<Program> programs;
        std::vector<ChaosWorkload> list;
    };
    static const Registry reg = [] {
        Registry r;
        r.programs.push_back(makePointerChase(512, 1));
        r.programs.push_back(makeInterpreter(1500));
        r.programs.push_back(makeHashTable(400, 400));
        r.programs.push_back(makeTreeSearch(6, 3));
        r.programs.push_back(makeChaCha20(4));
        r.programs.push_back(makeDjbsort(64));
        r.programs.push_back(makeSpectreV1().program);
        const char *names[] = {"pchase",     "interp",  "hashtab",
                               "treesearch", "chacha20", "djbsort",
                               "spectre-v1"};
        for (std::size_t i = 0; i < r.programs.size(); ++i)
            r.list.push_back({names[i], &r.programs[i]});
        return r;
    }();
    return reg.list;
}

std::vector<NamedConfig>
chaosEngines()
{
    std::vector<NamedConfig> engines;
    for (const NamedConfig &cfg : table2Configs())
        if (cfg.name == "SPT{Bwd,ShadowL1}" || cfg.name == "STT" ||
            cfg.name == "SecureBaseline")
            engines.push_back(cfg);
    return engines;
}

} // namespace spt
