#include "sim/profile.h"

#include <algorithm>
#include <iomanip>

#include "common/json.h"
#include "uarch/security_engine.h"

namespace spt {

// --------------------------------------------------------------------
// DelayProfiler
// --------------------------------------------------------------------

void
DelayProfiler::delayCycle(uint64_t, const DynInst &d, DelayKind kind,
                          DelayCause cause)
{
    PcDelays &pd = pcs_[d.pc];
    ++pd.total;
    ++pd.by_cause[static_cast<size_t>(cause)];
    ++total_;
    ++by_cause_[static_cast<size_t>(cause)];
    ++by_kind_[static_cast<size_t>(kind)];
}

std::vector<std::pair<uint64_t, const DelayProfiler::PcDelays *>>
DelayProfiler::sortedPcs() const
{
    std::vector<std::pair<uint64_t, const PcDelays *>> rows;
    rows.reserve(pcs_.size());
    for (const auto &[pc, pd] : pcs_)
        rows.emplace_back(pc, &pd);
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  if (a.second->total != b.second->total)
                      return a.second->total > b.second->total;
                  return a.first < b.first;
              });
    return rows;
}

void
DelayProfiler::writeTable(std::ostream &os, size_t top_n) const
{
    os << "top delay sources (" << total_
       << " attributed cycles over " << pcs_.size() << " pcs)\n";
    os << std::left << std::setw(8) << "pc" << std::right
       << std::setw(12) << "cycles" << std::setw(8) << "share";
    for (size_t c = 0; c < kNumCauses; ++c)
        os << std::setw(15)
           << delayCauseName(static_cast<DelayCause>(c));
    os << "\n";
    const auto rows = sortedPcs();
    const size_t n = std::min(top_n, rows.size());
    for (size_t i = 0; i < n; ++i) {
        const auto &[pc, pd] = rows[i];
        const double share =
            total_ == 0 ? 0.0
                        : static_cast<double>(pd->total) /
                              static_cast<double>(total_);
        os << std::left << std::setw(8) << pc << std::right
           << std::setw(12) << pd->total << std::setw(7)
           << std::fixed << std::setprecision(1) << share * 100.0
           << "%";
        for (size_t c = 0; c < kNumCauses; ++c)
            os << std::setw(15) << pd->by_cause[c];
        os << "\n";
    }
    os.unsetf(std::ios::floatfield);
}

std::string
DelayProfiler::toJson(size_t top_n) const
{
    JsonWriter jw;
    jw.beginObject();
    jw.field("total_delay_cycles", total_);
    jw.key("by_cause").beginObject();
    for (size_t c = 0; c < kNumCauses; ++c)
        jw.field(delayCauseName(static_cast<DelayCause>(c)),
                 by_cause_[c]);
    jw.endObject();
    jw.key("by_kind").beginObject();
    jw.field("mem", by_kind_[0]);
    jw.field("branch", by_kind_[1]);
    jw.field("memorder", by_kind_[2]);
    jw.endObject();
    const auto rows = sortedPcs();
    jw.field("distinct_pcs", static_cast<uint64_t>(rows.size()));
    jw.key("top_pcs").beginArray();
    const size_t n = std::min(top_n, rows.size());
    for (size_t i = 0; i < n; ++i) {
        const auto &[pc, pd] = rows[i];
        jw.beginObject();
        jw.field("pc", pc);
        jw.field("total", pd->total);
        jw.key("by_cause").beginObject();
        for (size_t c = 0; c < kNumCauses; ++c)
            jw.field(delayCauseName(static_cast<DelayCause>(c)),
                     pd->by_cause[c]);
        jw.endObject();
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    return jw.str();
}

// --------------------------------------------------------------------
// IntervalRecorder
// --------------------------------------------------------------------

IntervalRecorder::IntervalRecorder(uint64_t period,
                                   const SecurityEngine *engine)
    : period_(period == 0 ? 1 : period), engine_(engine)
{
}

void
IntervalRecorder::retired(uint64_t, const DynInst &)
{
    ++retired_in_interval_;
}

void
IntervalRecorder::delayCycle(uint64_t, const DynInst &, DelayKind,
                             DelayCause)
{
    ++delays_in_interval_;
}

void
IntervalRecorder::take(uint64_t cycle)
{
    Sample s;
    s.cycle = cycle;
    s.cycles = cycle - last_sample_cycle_;
    s.instructions = retired_in_interval_;
    s.delay_cycles = delays_in_interval_;
    s.broadcast_queue = engine_->broadcastQueueOccupancy();
    s.tainted_regs = engine_->taintedRegCount();
    samples_.push_back(s);
    last_sample_cycle_ = cycle;
    retired_in_interval_ = 0;
    delays_in_interval_ = 0;
}

void
IntervalRecorder::cycleEnd(uint64_t cycle)
{
    if (cycle - last_sample_cycle_ >= period_)
        take(cycle);
}

void
IntervalRecorder::finish(uint64_t final_cycle)
{
    // The halt cycle skips cycleEnd (the core returns right after
    // commit), so the tail interval is closed here; it may be
    // shorter than the period.
    if (final_cycle > last_sample_cycle_)
        take(final_cycle);
}

std::string
IntervalRecorder::toJson() const
{
    JsonWriter jw;
    jw.beginObject();
    jw.field("period", period_);
    jw.key("samples").beginArray();
    for (const Sample &s : samples_) {
        jw.beginObject();
        jw.field("cycle", s.cycle);
        jw.field("cycles", s.cycles);
        jw.field("instructions", s.instructions);
        jw.field("ipc",
                 s.cycles == 0
                     ? 0.0
                     : static_cast<double>(s.instructions) /
                           static_cast<double>(s.cycles),
                 4);
        jw.field("delayed_transmitter_cycles", s.delay_cycles);
        jw.field("broadcast_queue_occupancy", s.broadcast_queue);
        jw.field("tainted_regs", s.tainted_regs);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    return jw.str();
}

} // namespace spt
