#include "sim/exp_runner.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"
#include "common/parallel.h"

namespace spt {

std::string
jobKey(const RunJob &job)
{
    // Every descriptor field participates. SptConfig currently has
    // exactly {method, shadow, broadcast_width}; extend this when it
    // grows (tests/test_exp_runner.cpp pins the sensitivity). The
    // observability flags must participate too: a traced run carries
    // artifacts a plain run lacks, so the two may not share a slot.
    char buf[192];
    std::snprintf(
        buf, sizeof buf,
        "p=%p|sch=%u|m=%u|sh=%u|bw=%u|am=%u|seed=%llu|mc=%llu"
        "|tr=%u|pf=%u|iv=%llu",
        static_cast<const void *>(job.program),
        static_cast<unsigned>(job.engine.scheme),
        static_cast<unsigned>(job.engine.spt.method),
        static_cast<unsigned>(job.engine.spt.shadow),
        job.engine.spt.broadcast_width,
        static_cast<unsigned>(job.attack_model),
        static_cast<unsigned long long>(job.seed),
        static_cast<unsigned long long>(job.max_cycles),
        static_cast<unsigned>(job.trace),
        static_cast<unsigned>(job.profile),
        static_cast<unsigned long long>(job.interval_stats));
    return buf;
}

ExpRunner::ExpRunner(unsigned jobs) : workers_(resolveJobs(jobs)) {}

std::vector<RunOutcome>
ExpRunner::run(const std::vector<RunJob> &grid)
{
    for (std::size_t i = 0; i < grid.size(); ++i)
        if (grid[i].program == nullptr)
            SPT_FATAL("RunJob " << i << " has a null program");

    // Deduplicate up front: unique jobs run on the pool, duplicate
    // slots are filled by copy afterwards.
    std::vector<std::size_t> unique;       // grid indices to simulate
    std::vector<std::size_t> source(grid.size()); // slot -> source slot
    std::unordered_map<std::string, std::size_t> first_by_key;
    unique.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto [it, inserted] =
            first_by_key.emplace(jobKey(grid[i]), i);
        source[i] = it->second;
        if (inserted)
            unique.push_back(i);
    }

    std::vector<RunOutcome> outcomes(grid.size());
    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(unique.size(), workers_, [&](std::size_t u) {
        const std::size_t slot = unique[u];
        const RunJob &job = grid[slot];
        SimConfig cfg;
        cfg.engine = job.engine;
        cfg.core.attack_model = job.attack_model;
        cfg.max_cycles = job.max_cycles;
        cfg.profile = job.profile;
        cfg.interval_stats = job.interval_stats;
        Simulator sim(*job.program, cfg);
        std::ostringstream trace_text, trace_pipeview;
        if (job.trace)
            sim.enableTrace(&trace_text, &trace_pipeview);
        const auto j0 = std::chrono::steady_clock::now();
        RunOutcome out;
        out.result = sim.run();
        const auto j1 = std::chrono::steady_clock::now();
        out.host_seconds =
            std::chrono::duration<double>(j1 - j0).count();
        const StatSet &stats = sim.core().engine().stats();
        out.engine_counters = stats.counters();
        out.engine_histograms = stats.histograms();
        if (job.trace) {
            out.trace_text = trace_text.str();
            out.trace_pipeview = trace_pipeview.str();
        }
        if (sim.profiler())
            out.profile_json = sim.profiler()->toJson();
        if (sim.intervals())
            out.intervals_json = sim.intervals()->toJson();
        outcomes[slot] = std::move(out);
    });
    const auto t1 = std::chrono::steady_clock::now();

    for (std::size_t i = 0; i < grid.size(); ++i)
        if (source[i] != i)
            outcomes[i] = outcomes[source[i]];

    last_.workers = workers_;
    last_.unique_jobs = unique.size();
    last_.memo_hits = grid.size() - unique.size();
    last_.wall_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    return outcomes;
}

} // namespace spt
