#include "sim/exp_runner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "common/json.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "sim/sweep_service.h"
#include "uarch/invariant_checker.h"

namespace spt {

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::kOk:        return "ok";
      case RunStatus::kTimeout:   return "timeout";
      case RunStatus::kLivelock:  return "livelock";
      case RunStatus::kViolation: return "violation";
      case RunStatus::kCrash:     return "crash";
    }
    return "?";
}

std::string
jobKey(const RunJob &job)
{
    // Every descriptor field except `label` participates. SptConfig
    // currently has exactly {method, shadow, broadcast_width,
    // storage, mutation, knowledge_map}; extend this when it grows
    // (tests/test_exp_runner.cpp pins the sensitivity). The
    // observability flags must participate too: a traced run carries
    // artifacts a plain run lacks, so the two may not share a slot.
    // The wall timeout participates because it can change the
    // outcome (a capped run may cut off early). fast_forward and the
    // checkpoint knobs participate even though they are
    // result-identical by contract: they change ff.* counters /
    // where a run starts, and merging them would hide exactly the
    // regressions the equivalence gates exist to catch.
    char buf[384];
    int n = std::snprintf(
        buf, sizeof buf,
        "p=%p|sch=%u|m=%u|sh=%u|bw=%u|st=%u|mut=%u|km=%p|am=%u"
        "|seed=%llu"
        "|mc=%llu|tr=%u|pf=%u|iv=%llu|inv=%u|wd=%llu|wt=%.9g|ff=%u"
        "|ca=%llu|fs=%llu",
        static_cast<const void *>(job.program),
        static_cast<unsigned>(job.engine.scheme),
        static_cast<unsigned>(job.engine.spt.method),
        static_cast<unsigned>(job.engine.spt.shadow),
        job.engine.spt.broadcast_width,
        static_cast<unsigned>(job.engine.spt.storage),
        static_cast<unsigned>(job.engine.spt.mutation),
        static_cast<const void *>(job.engine.spt.knowledge_map),
        static_cast<unsigned>(job.attack_model),
        static_cast<unsigned long long>(job.seed),
        static_cast<unsigned long long>(job.max_cycles),
        static_cast<unsigned>(job.trace),
        static_cast<unsigned>(job.profile),
        static_cast<unsigned long long>(job.interval_stats),
        static_cast<unsigned>(job.invariants),
        static_cast<unsigned long long>(job.watchdog_cycles),
        job.wall_timeout_seconds,
        static_cast<unsigned>(job.fast_forward),
        static_cast<unsigned long long>(job.checkpoint_at),
        static_cast<unsigned long long>(job.faults.seed));
    std::string key(buf, static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        std::snprintf(buf, sizeof buf, "|f%zu=%u", i,
                      job.faults.rate_ppm[i]);
        key += buf;
    }
    key += "|ck=";
    key += job.checkpoint;
    return key;
}

std::string
describeRunJob(const RunJob &job)
{
    if (!job.label.empty())
        return job.label;
    std::string desc = engineConfigName(job.engine);
    desc += job.attack_model == AttackModel::kSpectre
                ? "/spectre"
                : "/futuristic";
    if (job.seed != 0)
        desc += "/seed=" + std::to_string(job.seed);
    if (job.faults.any())
        desc += "/faults@" + std::to_string(job.faults.seed);
    return desc;
}

namespace {

SimConfig
configFor(const RunJob &job)
{
    SimConfig cfg;
    cfg.engine = job.engine;
    cfg.core.attack_model = job.attack_model;
    cfg.max_cycles = job.max_cycles;
    cfg.profile = job.profile;
    cfg.interval_stats = job.interval_stats;
    cfg.faults = job.faults;
    cfg.invariants = job.invariants;
    if (job.watchdog_cycles != 0)
        cfg.core.watchdog_cycles = job.watchdog_cycles;
    cfg.wall_timeout_seconds = job.wall_timeout_seconds;
    cfg.core.fast_forward = job.fast_forward;
    cfg.checkpoint_at_retires = job.checkpoint_at;
    return cfg;
}

/** Classification order: the strongest signal wins. A violating run
 *  that also livelocked is a violation (the livelock is already one
 *  of its diagnostic reports); a run that merely stalled — the
 *  checker's only complaint being forward progress — is a
 *  livelock. */
RunStatus
classify(const Simulator &sim, const SimResult &r)
{
    if (sim.invariants() != nullptr &&
        sim.invariants()->securityViolations() != 0)
        return RunStatus::kViolation;
    switch (r.termination) {
      case Termination::kLivelock:
        return RunStatus::kLivelock;
      case Termination::kWallTimeout:
      case Termination::kMaxCycles:
        return RunStatus::kTimeout;
      case Termination::kHalted:
        break;
    }
    return RunStatus::kOk;
}

/** Last @p lines lines of @p text (failure evidence wants the tail:
 *  the trace around the violating instruction, not the warm-up). */
std::string
tail(const std::string &text, std::size_t lines)
{
    std::size_t pos = text.size();
    while (lines > 0 && pos > 0) {
        const std::size_t nl = text.rfind('\n', pos - 1);
        if (nl == std::string::npos) {
            pos = 0;
            break;
        }
        pos = nl;
        --lines;
    }
    return pos == 0 ? text : text.substr(pos + 1);
}

/** Re-run a failed job once with trace + invariants attached to
 *  gather evidence; never throws. */
void
captureEvidence(const RunJob &job, RunOutcome &out)
{
    try {
        SimConfig cfg = configFor(job);
        cfg.invariants = true;
        Simulator sim(*job.program, cfg);
        if (!job.checkpoint.empty()) {
            std::ifstream snap(job.checkpoint, std::ios::binary);
            if (!snap)
                SPT_FATAL("cannot open snapshot " << job.checkpoint);
            sim.restoreSnapshot(snap);
        }
        std::ostringstream text, pipeview;
        sim.enableTrace(&text, &pipeview);
        const SimResult r = sim.run();
        const RunStatus rerun = classify(sim, r);
        out.reproduced = rerun == out.status;
        out.evidence_trace = tail(text.str(), 64);
        if (out.diagnostics_json.empty() ||
            out.diagnostics_json == "[]")
            out.diagnostics_json = sim.diagnosticsJson();
    } catch (const std::exception &e) {
        // A crash at the same point *is* the reproduction.
        out.reproduced = out.status == RunStatus::kCrash;
        if (out.error.empty())
            out.error = e.what();
    }
}

/** Resolves the RunnerPolicy/environment cache configuration into
 *  an open cache, or nullptr when disabled. */
std::unique_ptr<ResultCache>
openCache(const RunnerPolicy &policy)
{
    std::string dir = policy.cache_dir;
    CacheMode mode = policy.cache_mode;
    if (dir.empty()) {
        const char *env_dir = std::getenv("SPT_CACHE_DIR");
        if (env_dir == nullptr || *env_dir == '\0')
            return nullptr;
        dir = env_dir;
        mode = CacheMode::kReadWrite;
        if (const char *env_mode = std::getenv("SPT_CACHE_MODE"))
            mode = parseCacheMode(env_mode);
    }
    if (mode == CacheMode::kOff)
        return nullptr;
    return std::make_unique<ResultCache>(std::move(dir), mode);
}

} // namespace

ExpRunner::ExpRunner(unsigned jobs) : workers_(resolveJobs(jobs)) {}

std::vector<RunOutcome>
ExpRunner::run(const std::vector<RunJob> &grid,
               const RunnerPolicy &policy)
{
    for (std::size_t i = 0; i < grid.size(); ++i)
        if (grid[i].program == nullptr)
            SPT_FATAL("RunJob " << i << " has a null program");

    // Route the whole grid to a sweep daemon when one is configured
    // (it owns the warm cache and worker pool; outcomes come back
    // byte-identical to an in-process run).
    std::string socket = policy.service_socket;
    if (socket.empty())
        if (const char *env = std::getenv("SPT_SWEEP_SOCKET"))
            socket = env;
    if (!socket.empty() && socket != kNoSweepService)
        return runGridViaService(socket, grid, policy, &last_);

    // Deduplicate up front: unique jobs run on the pool, duplicate
    // slots are filled by copy afterwards.
    std::vector<std::size_t> unique;       // grid indices to simulate
    std::vector<std::size_t> source(grid.size()); // slot -> source slot
    std::unordered_map<std::string, std::size_t> first_by_key;
    unique.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto [it, inserted] =
            first_by_key.emplace(jobKey(grid[i]), i);
        source[i] = it->second;
        if (inserted)
            unique.push_back(i);
    }

    // Telemetry sinks (observability only — nothing below reads any
    // of these back into simulated state, which is the whole
    // determinism argument of DESIGN.md §15). Series handles are
    // resolved here on the main thread so workers only bump atomics.
    EventLog &elog =
        policy.event_log ? *policy.event_log : EventLog::global();
    MetricsRegistry &reg =
        policy.metrics ? *policy.metrics : MetricsRegistry::global();
    ProgressBoard &board =
        policy.progress ? *policy.progress : ProgressBoard::global();
    Counter &m_exec = reg.counter("runner.jobs.executed");
    Counter &m_cycles = reg.counter("runner.sim.cycles");
    Counter &m_instr = reg.counter("runner.sim.instructions");
    Counter &m_cache_hits = reg.counter("runner.cache.hits");
    Counter &m_cache_misses = reg.counter("runner.cache.misses");
    Counter &m_verify_mm =
        reg.counter("runner.cache.verify_mismatches");
    BoundedHistogram &m_host_ms = reg.histogram(
        "runner.job.host_ms", {1, 10, 100, 1000, 10000, 60000});
    Gauge &g_running = reg.gauge("runner.jobs.running");
    board.reset(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        board.setLabel(i, describeRunJob(grid[i]));
    const std::string sweep_span = EventLog::newSpanId();
    elog.emit(EventLevel::kInfo, "runner", "sweep-start",
              EventFields()
                  .num("jobs", static_cast<uint64_t>(grid.size()))
                  .num("unique",
                       static_cast<uint64_t>(unique.size()))
                  .num("workers", static_cast<uint64_t>(workers_)),
              sweep_span, policy.parent_span);

    // Canonical cache keys are computed up front on the main thread:
    // canonicalKey may read a checkpoint file, and the memoization
    // map it fills is shared mutable state the pool workers must not
    // touch (common/parallel.h contract).
    const std::unique_ptr<ResultCache> cache = openCache(policy);
    std::vector<std::string> ckeys(grid.size());
    if (cache) {
        std::map<std::string, uint64_t> ckpt_hashes;
        for (const std::size_t slot : unique)
            ckeys[slot] =
                ResultCache::canonicalKey(grid[slot], &ckpt_hashes);
    }

    std::vector<RunOutcome> outcomes(grid.size());
    // Exceptions are caught per slot and resolved after the pool
    // drains, so a failing sweep (a) always identifies the
    // lowest-indexed failing job regardless of worker scheduling and
    // (b) under keep_going completes with the failure confined to
    // its own slot.
    std::vector<std::exception_ptr> errors(grid.size());
    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(unique.size(), workers_, [&](std::size_t u) {
        const std::size_t slot = unique[u];
        const RunJob &job = grid[slot];
        const std::string &ckey = ckeys[slot];
        RunOutcome cached;
        bool verify_hit = false;
        bool cache_hit = false;
        if (cache && !ckey.empty()) {
            if (cache->lookup(ckey, &cached)) {
                cache_hit = true;
                // Mirrors ResultCache's own hit/miss accrual so the
                // registry series conserve against SweepStats::cache
                // (pinned in tests/test_telemetry.cpp).
                m_cache_hits.inc();
            } else {
                m_cache_misses.inc();
            }
        }
        if (cache_hit) {
            if (cache->mode() == CacheMode::kVerify) {
                verify_hit = true; // re-simulate, then compare
            } else {
                board.start(slot);
                board.finish(slot, cached.result.cycles,
                             cached.result.instructions);
                elog.emit(EventLevel::kInfo, "runner", "job-done",
                          EventFields()
                              .num("slot",
                                   static_cast<uint64_t>(slot))
                              .str("job", describeRunJob(job))
                              .str("status",
                                   runStatusName(cached.status))
                              .num("cycles", cached.result.cycles)
                              .str("cache", "hit"),
                          EventLog::newSpanId(), sweep_span);
                outcomes[slot] = std::move(cached);
                if (policy.on_slot_complete)
                    policy.on_slot_complete(slot, outcomes[slot]);
                return;
            }
        }
        const std::string job_span = EventLog::newSpanId();
        board.start(slot);
        g_running.add(1);
        elog.emit(EventLevel::kDebug, "runner", "job-start",
                  EventFields()
                      .num("slot", static_cast<uint64_t>(slot))
                      .str("job", describeRunJob(job)),
                  job_span, sweep_span);
        RunOutcome out;
        try {
            SimConfig cfg = configFor(job);
            Simulator sim(*job.program, cfg);
            if (!job.checkpoint.empty()) {
                std::ifstream snap(job.checkpoint,
                                   std::ios::binary);
                if (!snap)
                    SPT_FATAL("cannot open snapshot "
                              << job.checkpoint);
                sim.restoreSnapshot(snap);
            }
            std::ostringstream trace_text, trace_pipeview;
            if (job.trace)
                sim.enableTrace(&trace_text, &trace_pipeview);
            if (policy.heartbeat_cycles != 0)
                sim.setHeartbeat(
                    policy.heartbeat_cycles,
                    [&board, slot](uint64_t c, uint64_t i) {
                        board.heartbeat(slot, c, i);
                    });
            const auto j0 = std::chrono::steady_clock::now();
            out.result = sim.run();
            const auto j1 = std::chrono::steady_clock::now();
            out.host_seconds =
                std::chrono::duration<double>(j1 - j0).count();
            const StatSet &stats = sim.core().engine().stats();
            out.engine_counters = stats.counters();
            out.engine_histograms = stats.histograms();
            if (job.trace) {
                out.trace_text = trace_text.str();
                out.trace_pipeview = trace_pipeview.str();
            }
            if (sim.profiler())
                out.profile_json = sim.profiler()->toJson();
            if (sim.intervals())
                out.intervals_json = sim.intervals()->toJson();
            if (sim.faults())
                out.fault_counters = sim.faults()->counters();
            for (unsigned r = 0; r < kNumArchRegs; ++r)
                out.arch_regs[r] = sim.core().archReg(r);
            out.status = classify(sim, out.result);
            if (job.invariants || out.status != RunStatus::kOk)
                out.diagnostics_json = sim.diagnosticsJson();
        } catch (const std::exception &e) {
            out.status = RunStatus::kCrash;
            out.error = e.what();
            errors[slot] = std::current_exception();
        }
        if (verify_hit &&
            ResultCache::encodeOutcomeDeterministic(out) !=
                ResultCache::encodeOutcomeDeterministic(cached)) {
            cache->noteVerifyMismatch(ckey);
            m_verify_mm.inc();
        }
        if (cache && !ckey.empty() && !verify_hit)
            cache->store(ckey, out);
        if (policy.capture_evidence &&
            (out.status == RunStatus::kCrash ||
             out.status == RunStatus::kViolation))
            captureEvidence(job, out);
        g_running.add(-1);
        m_exec.inc();
        // Simulated-work totals: conserve against the per-outcome
        // cycle/instruction counts (each executed simulation billed
        // exactly once; memo and cache hits excluded).
        m_cycles.inc(out.result.cycles);
        m_instr.inc(out.result.instructions);
        m_host_ms.record(
            static_cast<uint64_t>(out.host_seconds * 1000.0));
        board.finish(slot, out.result.cycles,
                     out.result.instructions);
        elog.emit(out.failed() ? EventLevel::kWarn
                               : EventLevel::kInfo,
                  "runner", "job-done",
                  EventFields()
                      .num("slot", static_cast<uint64_t>(slot))
                      .str("job", describeRunJob(job))
                      .str("status", runStatusName(out.status))
                      .num("cycles", out.result.cycles)
                      .num("instructions", out.result.instructions)
                      .real("host_s", out.host_seconds)
                      .str("cache", !cache ? "off"
                                  : verify_hit ? "verify"
                                               : "miss"),
                  job_span, sweep_span);
        outcomes[slot] = std::move(out);
        if (policy.on_slot_complete)
            policy.on_slot_complete(slot, outcomes[slot]);
    });
    const auto t1 = std::chrono::steady_clock::now();

    for (std::size_t i = 0; i < grid.size(); ++i)
        if (source[i] != i) {
            outcomes[i] = outcomes[source[i]];
            // A memo hit costs no host time; copying the source
            // slot's timing would bill the unique run once per
            // duplicate in every per-config host-time total.
            outcomes[i].memoized = true;
            outcomes[i].host_seconds = 0.0;
            // Memoized slots never ran on the pool; mark them done
            // on the board so monitors see 100% completion.
            board.start(i);
            board.finish(i, outcomes[i].result.cycles,
                         outcomes[i].result.instructions);
            if (policy.on_slot_complete)
                policy.on_slot_complete(i, outcomes[i]);
        }
    // Descriptors are per-slot, not per-unique-run: duplicates may
    // carry distinct labels.
    for (std::size_t i = 0; i < grid.size(); ++i)
        outcomes[i].job_desc = describeRunJob(grid[i]);

    last_.workers = workers_;
    last_.unique_jobs = unique.size();
    last_.memo_hits = grid.size() - unique.size();
    last_.wall_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    last_.cache = cache ? cache->stats() : CacheStats{};
    last_.cache_mode =
        cache ? cacheModeName(cache->mode()) : "off";
    last_.cache_dir = cache ? cache->dir() : "";
    last_.via_service = false;
    last_.failed_jobs = 0;
    last_.first_failure.clear();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!outcomes[i].failed())
            continue;
        ++last_.failed_jobs;
        if (last_.first_failure.empty())
            last_.first_failure = outcomes[i].job_desc;
    }

    // Sweep-level series: per-event counters were bumped live in
    // the workers; the remaining totals are only known here.
    reg.counter("runner.sweeps").inc();
    reg.counter("runner.jobs.submitted")
        .inc(static_cast<uint64_t>(grid.size()));
    reg.counter("runner.jobs.memoized").inc(last_.memo_hits);
    reg.counter("runner.jobs.failed").inc(last_.failed_jobs);
    reg.counter("runner.cache.bytes_written")
        .inc(last_.cache.bytes_written);
    elog.emit(last_.failed_jobs ? EventLevel::kWarn
                                : EventLevel::kInfo,
              "runner", "sweep-done",
              EventFields()
                  .num("jobs", static_cast<uint64_t>(grid.size()))
                  .num("unique", last_.unique_jobs)
                  .num("memo_hits", last_.memo_hits)
                  .num("failed", last_.failed_jobs)
                  .str("first_failure", last_.first_failure)
                  .num("cache_hits", last_.cache.hits)
                  .num("cache_misses", last_.cache.misses)
                  .real("wall_s", last_.wall_seconds),
              sweep_span, policy.parent_span);

    if (!policy.keep_going)
        for (std::size_t i = 0; i < grid.size(); ++i)
            if (errors[source[i]])
                std::rethrow_exception(errors[source[i]]);
    return outcomes;
}

void
sweepReportJson(JsonWriter &jw, const std::vector<RunJob> &grid,
                const std::vector<RunOutcome> &outcomes,
                const SweepStats &stats)
{
    SPT_ASSERT(grid.size() == outcomes.size(),
               "sweep report: grid/outcome size mismatch");
    jw.beginObject();
    jw.field("jobs", static_cast<uint64_t>(grid.size()));
    jw.field("unique_jobs", stats.unique_jobs);
    jw.field("memo_hits", stats.memo_hits);
    jw.field("failed_jobs", stats.failed_jobs);
    jw.field("first_failure", stats.first_failure);
    // host_seconds_saved is host-timing and deliberately excluded:
    // this report must stay byte-identical across hosts and worker
    // counts (the determinism gates cmp it).
    jw.key("cache");
    jw.beginObject();
    jw.field("mode", stats.cache_mode);
    jw.field("hits", stats.cache.hits);
    jw.field("misses", stats.cache.misses);
    jw.field("verify_mismatches", stats.cache.verify_mismatches);
    jw.field("bytes_written", stats.cache.bytes_written);
    jw.endObject();
    jw.key("cells");
    jw.beginArray();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const RunOutcome &out = outcomes[i];
        jw.beginObject();
        jw.field("index", static_cast<uint64_t>(i));
        jw.field("job", out.job_desc);
        jw.field("status", runStatusName(out.status));
        jw.field("termination",
                 terminationName(out.result.termination));
        jw.field("cycles", out.result.cycles);
        jw.field("instructions", out.result.instructions);
        if (!out.error.empty())
            jw.field("error", out.error);
        if (!out.fault_counters.empty()) {
            jw.key("faults");
            jw.beginObject();
            for (const auto &[name, value] : out.fault_counters)
                jw.field(name, value);
            jw.endObject();
        }
        if (!out.diagnostics_json.empty() &&
            out.diagnostics_json != "[]") {
            jw.key("diagnostics");
            jw.raw(out.diagnostics_json);
        }
        if (out.status == RunStatus::kCrash ||
            out.status == RunStatus::kViolation)
            jw.field("reproduced", out.reproduced);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
}

} // namespace spt
