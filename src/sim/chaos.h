/**
 * @file
 * Fault-injection campaign driver ("chaos engineering" for the
 * simulated machine): sweeps workloads x protection engines x fault
 * kinds with the runtime invariant checker attached, and verdicts
 * the run on two properties at once —
 *
 *  1. *metamorphic architectural equivalence*: every fault in
 *     common/fault_hooks.h perturbs timing only, so the final
 *     architectural register file, retired-instruction count, and
 *     halt status of a faulted run must be identical to the
 *     fault-free run of the same (workload, engine) cell;
 *  2. *invariant cleanliness*: no fault schedule may drive the
 *     machine into a state the InvariantChecker rejects — faults
 *     stress the pipeline, they must never break it or open a
 *     security gate.
 *
 * A campaign is one keep_going ExpRunner sweep, so a crashing cell
 * is isolated and classified rather than aborting the campaign, and
 * the emitted JSON is byte-identical at any --jobs.
 *
 * Mutation mode (negative control): re-runs each workload on an SPT
 * engine seeded with a known taint bug
 * (SptConfig::Mutation::kLeakyMemGate) and checks that the
 * invariant checker *does* fire — proving the watchdog can detect
 * the class of bug it exists for, not merely stay silent on healthy
 * runs.
 */

#ifndef SPT_SIM_CHAOS_H
#define SPT_SIM_CHAOS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_hooks.h"
#include "sim/exp_runner.h"

namespace spt {

/** One campaign workload; the program is non-owning and must
 *  outlive the campaign. */
struct ChaosWorkload {
    std::string name;
    const Program *program = nullptr;
};

struct ChaosConfig {
    /** Base seed; per-cell fault-plan seeds derive from it, the
     *  workload, the engine, and the fault site, so no two cells
     *  share a fault schedule. */
    uint64_t seed = 1;
    /** Worker count (0 = SPT_JOBS / hardware_concurrency). Never
     *  affects the campaign JSON. */
    unsigned jobs = 0;
    std::vector<ChaosWorkload> workloads;
    std::vector<NamedConfig> engines;
    /** Fault kinds to campaign; empty = all of them. */
    std::vector<FaultSite> faults;
    /** Per-site Bernoulli rate, parts per million. */
    uint32_t rate_ppm = 20'000;
    AttackModel model = AttackModel::kFuturistic;
    uint64_t max_cycles = 50'000'000;
    /** Append the seeded-bug negative control. */
    bool mutate = false;
};

struct ChaosSummary {
    uint64_t runs = 0;            ///< simulations performed
    uint64_t faults_injected = 0; ///< fired faults across all cells
    uint64_t violations = 0;      ///< invariant-violating cells
    uint64_t arch_divergences = 0; ///< cells breaking equivalence
    uint64_t failures = 0; ///< crashed / timed-out / livelocked cells
    bool mutation_ran = false;
    /** Did the checker catch the seeded bug (>= 1 mutated run
     *  reported a violation)? */
    bool mutation_detected = false;

    /** Campaign verdict, ignoring the negative control. */
    bool
    clean() const
    {
        return violations == 0 && arch_divergences == 0 &&
               failures == 0;
    }
};

struct ChaosResult {
    ChaosSummary summary;
    /** Deterministic campaign report (cells + summary), identical
     *  at any jobs count. */
    std::string json;
    /** DiagnosticReport JSON arrays of every violating or crashed
     *  cell, labelled — the artifacts a CI run uploads. */
    std::vector<std::pair<std::string, std::string>> diagnostics;
};

/** Runs the full campaign grid: per (workload, engine) one
 *  fault-free baseline plus one run per fault site, all with the
 *  invariant checker attached; then the mutation control if
 *  requested. */
ChaosResult runChaosCampaign(const ChaosConfig &cfg);

/** The default quick campaign inputs used by tools/spt_chaos and
 *  CI: small-footprint builds of seven workloads (pchase, interp,
 *  hashtab, treesearch, chacha20, djbsort, spectre-v1) against
 *  SPT{Bwd,ShadowL1}, STT, and SecureBaseline. The returned
 *  programs live in a static registry. */
std::vector<ChaosWorkload> quickChaosWorkloads();
std::vector<NamedConfig> chaosEngines();

} // namespace spt

#endif // SPT_SIM_CHAOS_H
