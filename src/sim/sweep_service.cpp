#include "sim/sweep_service.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "common/event_log.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "core/knowledge_map.h"
#include "isa/program.h"
#include "sim/batch_journal.h"
#include "sim/progress.h"

namespace spt {

namespace {

// --------------------------------------------------------------------
// Wire helpers: hex blobs and 4-byte-length-prefixed frames.
// --------------------------------------------------------------------

std::string
hexEncode(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const char c : bytes) {
        const uint8_t b = static_cast<uint8_t>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

std::string
hexDecode(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        SPT_FATAL("sweep service: odd-length hex blob");
    std::string out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hexNibble(hex[i]);
        const int lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            SPT_FATAL("sweep service: invalid hex blob");
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    return out;
}

constexpr uint32_t kMaxFrame = 1u << 30;

/** send/recv with MSG_NOSIGNAL so a peer that vanished produces an
 *  error return, not a process-killing SIGPIPE. A send stall is
 *  bounded by SO_SNDTIMEO where the caller set one (EAGAIN surfaces
 *  here as failure). */
bool
sendAll(int fd, const char *p, std::size_t n)
{
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/** Waits for readability; @p timeout_ms < 0 waits forever. False on
 *  timeout or poll error. */
bool
pollIn(int fd, int timeout_ms)
{
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    for (;;) {
        const int r = ::poll(&p, 1, timeout_ms);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        return r > 0;
    }
}

/** recv() exactly @p n bytes, bounding each *stall* (silent gap, not
 *  total transfer time) by @p stall_ms; 0 disables the bound. With
 *  @p first_forever the wait for the first byte is unbounded — the
 *  daemon's idle-connection posture. */
bool
recvAllTimed(int fd, char *p, std::size_t n, unsigned stall_ms,
             bool first_forever)
{
    bool first = first_forever;
    while (n > 0) {
        const int timeout =
            (first || stall_ms == 0) ? -1
                                     : static_cast<int>(stall_ms);
        if (!pollIn(fd, timeout))
            return false; // stall or poll failure
        const ssize_t r = ::recv(fd, p, n, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false; // EOF
        first = false;
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrame)
        return false;
    char len[4];
    const uint32_t n = static_cast<uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        len[i] = static_cast<char>((n >> (8 * i)) & 0xff);
    return sendAll(fd, len, 4) &&
           sendAll(fd, payload.data(), payload.size());
}

/** Reads one frame with per-stall bounds (see recvAllTimed). Once
 *  the first byte of a frame has arrived, the rest must keep
 *  flowing within @p stall_ms — a peer that goes silent mid-frame
 *  is a transport failure, not a hang. */
bool
readFrameTimed(int fd, std::string *payload, unsigned stall_ms,
               bool first_forever)
{
    char len[4];
    if (!recvAllTimed(fd, len, 4, stall_ms, first_forever))
        return false;
    uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= uint32_t{static_cast<uint8_t>(len[i])} << (8 * i);
    if (n > kMaxFrame)
        return false;
    payload->resize(n);
    return n == 0 ||
           recvAllTimed(fd, payload->data(), n, stall_ms, false);
}

/** Bounds how long a send may stall before failing (EAGAIN); 0
 *  leaves the socket unbounded. */
void
setSendStall(int fd, unsigned ms)
{
    if (ms == 0)
        return;
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

std::string
errorResponse(const std::string &message)
{
    JsonWriter jw;
    jw.beginObject();
    jw.field("ok", false);
    jw.field("error", message);
    jw.endObject();
    return jw.str();
}

/** Structured failure with a machine-matchable "code" the client
 *  can act on ("unknown-batch" / "overloaded" / "draining"). */
std::string
errorResponseCode(const char *code, const std::string &message)
{
    JsonWriter jw;
    jw.beginObject();
    jw.field("ok", false);
    jw.field("code", code);
    jw.field("error", message);
    jw.endObject();
    return jw.str();
}

uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

// --------------------------------------------------------------------
// JOB codec (client encodes, daemon decodes). The program and
// knowledge map travel once per batch in "programs"/"maps" arrays;
// a job references them by index.
// --------------------------------------------------------------------

void
encodeJob(JsonWriter &jw, const RunJob &job, uint64_t prog_idx,
          int64_t km_idx)
{
    jw.beginObject();
    jw.field("prog", prog_idx);
    if (km_idx >= 0)
        jw.field("km", static_cast<uint64_t>(km_idx));
    jw.field("scheme", static_cast<uint64_t>(job.engine.scheme));
    jw.field("method",
             static_cast<uint64_t>(job.engine.spt.method));
    jw.field("shadow",
             static_cast<uint64_t>(job.engine.spt.shadow));
    jw.field("bw",
             static_cast<uint64_t>(job.engine.spt.broadcast_width));
    jw.field("storage",
             static_cast<uint64_t>(job.engine.spt.storage));
    jw.field("mutation",
             static_cast<uint64_t>(job.engine.spt.mutation));
    jw.field("attack", static_cast<uint64_t>(job.attack_model));
    jw.field("seed", job.seed);
    jw.field("max_cycles", job.max_cycles);
    jw.field("trace", job.trace);
    jw.field("profile", job.profile);
    jw.field("interval_stats", job.interval_stats);
    jw.field("fault_seed", job.faults.seed);
    jw.key("fault_ppm");
    jw.beginArray();
    for (const uint32_t ppm : job.faults.rate_ppm)
        jw.value(static_cast<uint64_t>(ppm));
    jw.endArray();
    jw.field("invariants", job.invariants);
    jw.field("watchdog", job.watchdog_cycles);
    // Bit pattern, not decimal text: the wall timeout must
    // round-trip exactly (it participates in jobKey()).
    jw.field("wall_timeout_bits",
             std::bit_cast<uint64_t>(job.wall_timeout_seconds));
    jw.field("fast_forward", job.fast_forward);
    jw.field("checkpoint_at", job.checkpoint_at);
    jw.field("checkpoint", job.checkpoint);
    jw.field("label", job.label);
    jw.endObject();
}

/** Representability check only (the enums are uint8_t): values the
 *  engine factory considers invalid still decode, crash that one
 *  job under the daemon's keep_going run, and come back classified
 *  kCrash — exactly what the same descriptor does in-process. */
template <typename Enum>
Enum
decodeEnum(const JsonValue &obj, const char *key)
{
    const uint64_t v = obj.at(key).asU64();
    if (v > 0xff)
        SPT_FATAL("sweep service: job field \"" << key
                  << "\" out of range: " << v);
    return static_cast<Enum>(v);
}

} // namespace

// --------------------------------------------------------------------
// Daemon
// --------------------------------------------------------------------

struct SweepService::Impl {
    /** One submitted grid plus the daemon-side objects its RunJobs
     *  point into; released when the result is fetched. */
    struct Batch {
        enum class State : uint8_t { kQueued, kRunning, kDone };

        uint64_t id = 0;
        /** Client idempotency token ("" when the client sent
         *  none). */
        std::string token;
        bool capture_evidence = false;
        std::vector<std::unique_ptr<Program>> programs;
        std::vector<std::unique_ptr<KnowledgeMap>> maps;
        std::vector<RunJob> grid;
        State state = State::kQueued;
        /** Per-slot results, pre-sized to the grid; have_outcome
         *  marks which slots hold one (journal recovery pre-fills
         *  completed slots, the executor runs only the rest). */
        std::vector<std::string> outcome_hex;
        std::vector<char> memoized;
        std::vector<char> have_outcome;
        SweepStats stats;
        std::string error; ///< batch-level execution failure
        /** Daemon-side batch span (returned to the client at
         *  submit); the runner's sweep span nests under it. */
        std::string span;
    };

    struct HandleResult {
        std::string json;
        bool shutdown = false;
    };

    explicit Impl(SweepServiceOptions o)
        : opt(std::move(o)), runner(opt.jobs)
    {
    }

    SweepServiceOptions opt;
    ExpRunner runner;
    std::unique_ptr<BatchJournal> journal;

    int listen_fd = -1;
    std::thread accept_thread;
    std::thread exec_thread;
    std::chrono::steady_clock::time_point started_at;

    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
    bool draining = false;
    bool started = false;
    std::vector<std::thread> conn_threads;
    std::set<int> conn_fds;
    uint64_t next_batch = 1;
    std::map<uint64_t, std::unique_ptr<Batch>> batches;
    std::deque<Batch *> queue; ///< submission order
    /** Idempotency: token -> live batch id (erased at release). */
    std::map<std::string, uint64_t> token_to_batch;
    ServiceStats totals;
    /** Batch id the executor holds right now; 0 when idle. */
    uint64_t inflight_batch = 0;

    void
    start()
    {
        started_at = std::chrono::steady_clock::now();
        if (!opt.journal_dir.empty()) {
            journal = std::make_unique<BatchJournal>(
                opt.journal_dir);
            recoverBatches();
        }
        listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd < 0)
            SPT_FATAL("sweep daemon: socket(): "
                      << std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opt.socket_path.size() >= sizeof addr.sun_path)
            SPT_FATAL("sweep daemon: socket path too long: "
                      << opt.socket_path);
        std::memcpy(addr.sun_path, opt.socket_path.c_str(),
                    opt.socket_path.size() + 1);
        ::unlink(opt.socket_path.c_str()); // stale socket file
        if (::bind(listen_fd,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof addr) != 0)
            SPT_FATAL("sweep daemon: cannot bind "
                      << opt.socket_path << ": "
                      << std::strerror(errno));
        if (::listen(listen_fd, 16) != 0)
            SPT_FATAL("sweep daemon: listen(): "
                      << std::strerror(errno));
        started = true;
        accept_thread = std::thread([this] { acceptLoop(); });
        exec_thread = std::thread([this] { execLoop(); });
    }

    /** Rebuilds live batches from the journal replay: done batches
     *  become fetchable immediately, incomplete ones re-enter the
     *  queue with their completed slots pre-filled so the executor
     *  re-runs only what was lost. Runs before any thread spawns. */
    void
    recoverBatches()
    {
        const BatchJournal::Recovery &rec = journal->recovery();
        next_batch = std::max(next_batch, rec.next_batch);
        for (const BatchJournal::BatchRecord &r : rec.batches) {
            std::unique_ptr<Batch> b;
            try {
                b = buildBatch(parseJson(r.request_json));
            } catch (const std::exception &e) {
                // A journaled request that no longer decodes
                // (version skew) is dropped, not fatal: the client
                // gets unknown-batch and resubmits.
                warn("[spt_sweepd] journaled batch " +
                     std::to_string(r.id) +
                     " not replayable: " + e.what());
                continue;
            }
            b->id = r.id;
            b->token = r.token;
            b->span = EventLog::newSpanId();
            const std::size_t n = b->grid.size();
            for (const auto &kv : r.slot_payloads) {
                if (kv.first >= n)
                    continue; // stale record for a different grid
                b->outcome_hex[kv.first] = hexEncode(kv.second);
                const auto mit = r.slot_memoized.find(kv.first);
                b->memoized[kv.first] =
                    (mit != r.slot_memoized.end() && mit->second)
                        ? 1
                        : 0;
                b->have_outcome[kv.first] = 1;
            }
            if (!r.token.empty())
                token_to_batch[r.token] = r.id;
            if (r.done) {
                b->state = Batch::State::kDone;
                b->stats = r.stats;
                b->error = r.error;
            } else {
                b->state = Batch::State::kQueued;
                queue.push_back(b.get());
            }
            next_batch = std::max(next_batch, r.id + 1);
            batches[r.id] = std::move(b);
            ++totals.recovered_batches;
        }
        if (totals.recovered_batches > 0 ||
            rec.dropped_bytes > 0) {
            MetricsRegistry::global()
                .counter("svc.batches.recovered")
                .inc(totals.recovered_batches);
            EventLog::global().emit(
                EventLevel::kInfo, "svc", "recovered",
                EventFields()
                    .num("batches", totals.recovered_batches)
                    .num("requeued",
                         static_cast<uint64_t>(queue.size()))
                    .num("dropped_bytes", rec.dropped_bytes));
            report("[spt_sweepd] journal recovery: " +
                   std::to_string(totals.recovered_batches) +
                   " batch(es), " +
                   std::to_string(queue.size()) +
                   " re-enqueued, " +
                   std::to_string(rec.dropped_bytes) +
                   " corrupt bytes dropped");
        }
    }

    void
    initiateStop()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopping)
                return;
            stopping = true;
        }
        cv.notify_all();
        // Unblocks accept() without closing the fd under the
        // accept thread's feet.
        if (listen_fd >= 0)
            ::shutdown(listen_fd, SHUT_RDWR);
    }

    /** SIGTERM drain: flip the flag and let the executor journal
     *  the cut point and stop once the in-flight batch lands. */
    void
    initiateDrain()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (draining || stopping)
                return;
            draining = true;
        }
        cv.notify_all();
        EventLog::global().emit(EventLevel::kInfo, "svc",
                                "drain-begin", EventFields());
        report("[spt_sweepd] draining: finishing in-flight batch, "
               "refusing new submits");
    }

    void
    join()
    {
        if (accept_thread.joinable())
            accept_thread.join();
        if (exec_thread.joinable())
            exec_thread.join();
        // Idle connections block in recv(); break them so their
        // threads can be joined.
        std::vector<std::thread> conns;
        {
            std::lock_guard<std::mutex> lock(mu);
            for (const int fd : conn_fds)
                ::shutdown(fd, SHUT_RDWR);
            conns.swap(conn_threads);
        }
        for (std::thread &t : conns)
            t.join();
        if (listen_fd >= 0) {
            ::close(listen_fd);
            listen_fd = -1;
            ::unlink(opt.socket_path.c_str());
        }
    }

    void
    acceptLoop()
    {
        for (;;) {
            const int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                return; // shut down (or fatal); stop accepting
            }
            // A peer that stops draining its receive buffer must
            // not wedge this connection's thread in send().
            setSendStall(fd, opt.request_timeout_ms);
            std::lock_guard<std::mutex> lock(mu);
            if (stopping) {
                ::close(fd);
                continue;
            }
            conn_fds.insert(fd);
            conn_threads.emplace_back(
                [this, fd] { connLoop(fd); });
        }
    }

    void
    connLoop(int fd)
    {
        std::string request;
        // Waiting for the *start* of a request is unbounded (idle
        // pollers are legitimate); once bytes flow, a mid-frame
        // stall longer than request_timeout_ms drops the peer.
        while (readFrameTimed(fd, &request, opt.request_timeout_ms,
                              /*first_forever=*/true)) {
            const HandleResult r = handle(request);
            const bool sent = writeFrame(fd, r.json);
            if (r.shutdown)
                initiateStop();
            if (!sent || r.shutdown)
                break;
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            conn_fds.erase(fd);
        }
        ::close(fd);
    }

    void
    execLoop()
    {
        EventLog &elog = EventLog::global();
        MetricsRegistry &reg = MetricsRegistry::global();
        Gauge &g_queue = reg.gauge("svc.queue_depth");
        Gauge &g_inflight = reg.gauge("svc.inflight_batch");
        for (;;) {
            Batch *batch = nullptr;
            uint64_t batch_id = 0;
            {
                std::unique_lock<std::mutex> lock(mu);
                cv.wait(lock, [this] {
                    return stopping || draining || !queue.empty();
                });
                if (draining) {
                    // The in-flight batch (if any) already landed —
                    // this thread ran it. Journal the cut so the
                    // next start re-enqueues what we leave behind,
                    // and do NOT run the remaining queue.
                    std::vector<uint64_t> queued;
                    for (const Batch *b : queue)
                        queued.push_back(b->id);
                    queue.clear();
                    g_queue.set(0);
                    lock.unlock();
                    if (journal)
                        journal->cut(0, queued);
                    elog.emit(EventLevel::kInfo, "svc",
                              "drain-cut",
                              EventFields().num(
                                  "queued_left",
                                  static_cast<uint64_t>(
                                      queued.size())));
                    initiateStop();
                    return;
                }
                if (queue.empty())
                    return; // stopping and drained
                batch = queue.front();
                queue.pop_front();
                batch->state = Batch::State::kRunning;
                batch_id = batch->id;
                inflight_batch = batch_id;
                g_queue.set(static_cast<int64_t>(queue.size()));
                g_inflight.set(static_cast<int64_t>(batch_id));
            }
            // Recovery may have pre-filled slots: run only the
            // missing subgrid; a fresh batch misses everything.
            std::vector<std::size_t> missing;
            for (std::size_t i = 0; i < batch->grid.size(); ++i)
                if (!batch->have_outcome[i])
                    missing.push_back(i);
            elog.emit(EventLevel::kInfo, "svc", "batch-start",
                      EventFields()
                          .num("batch", batch_id)
                          .num("jobs", static_cast<uint64_t>(
                                           batch->grid.size()))
                          .num("missing", static_cast<uint64_t>(
                                              missing.size())),
                      batch->span);
            RunnerPolicy pol;
            // Always keep_going: a crashing job is classified into
            // its slot; the client re-imposes fail-fast semantics.
            pol.keep_going = true;
            pol.capture_evidence = batch->capture_evidence;
            pol.cache_dir = opt.cache_dir;
            pol.cache_mode = opt.cache_mode;
            pol.service_socket = kNoSweepService; // never recurse
            // Nest the runner's sweep span under this batch's span
            // so one batch's records chain client -> daemon ->
            // runner -> job slot.
            pol.parent_span = batch->span;
            if (journal) {
                // Durability hook: each slot's outcome hits the
                // journal the moment it lands, from whichever pool
                // worker produced it. Subgrid index u maps back to
                // the batch slot through `missing`.
                BatchJournal *j = journal.get();
                const std::vector<std::size_t> *slot_map = &missing;
                pol.on_slot_complete =
                    [j, batch_id, slot_map](std::size_t u,
                                            const RunOutcome &out) {
                        j->slotDone(
                            batch_id, (*slot_map)[u],
                            ResultCache::encodeOutcome(out),
                            out.memoized);
                    };
            }
            std::vector<RunJob> sub;
            sub.reserve(missing.size());
            for (const std::size_t i : missing)
                sub.push_back(batch->grid[i]);
            std::vector<RunOutcome> outs;
            std::string error;
            SweepStats sweep;
            if (missing.empty()) {
                // Every slot was journaled before the crash; only
                // the BATCHDONE record was lost. Nothing to run.
                sweep.workers = runner.workers();
                sweep.cache_mode = opt.cache_dir.empty()
                                       ? "off"
                                       : cacheModeName(
                                             opt.cache_mode);
                sweep.cache_dir = opt.cache_dir;
            } else {
                try {
                    outs = runner.run(sub, pol);
                    sweep = runner.lastSweep();
                } catch (const std::exception &e) {
                    error = e.what();
                }
            }
            if (error.empty()) {
                elog.emit(EventLevel::kInfo, "svc", "batch-done",
                          EventFields()
                              .num("batch", batch_id)
                              .num("failed_jobs",
                                   sweep.failed_jobs)
                              .real("wall_s", sweep.wall_seconds),
                          batch->span);
            } else {
                // Batch-level execution failure (not a per-job
                // crash — those are classified into slots): dump
                // the flight recorder for the post-mortem before
                // answering the client.
                elog.emit(EventLevel::kWarn, "svc", "batch-error",
                          EventFields()
                              .num("batch", batch_id)
                              .str("error", error),
                          batch->span);
                report("[spt_sweepd] batch " +
                       std::to_string(batch_id) +
                       " failed: " + error);
                report("[spt_sweepd] flight recorder (most recent "
                       "last):");
                for (const std::string &line :
                     elog.recorder().dumpAll())
                    report("[spt_sweepd]   " + line);
            }
            std::lock_guard<std::mutex> lock(mu);
            inflight_batch = 0;
            g_inflight.set(0);
            if (error.empty()) {
                for (std::size_t u = 0; u < missing.size(); ++u) {
                    const std::size_t slot = missing[u];
                    batch->outcome_hex[slot] = hexEncode(
                        ResultCache::encodeOutcome(outs[u]));
                    batch->memoized[slot] =
                        outs[u].memoized ? 1 : 0;
                    batch->have_outcome[slot] = 1;
                }
                batch->stats = sweep;
                ++totals.batches_executed;
                totals.jobs_executed += outs.size();
                totals.failed_jobs += sweep.failed_jobs;
                totals.cache.hits += sweep.cache.hits;
                totals.cache.misses += sweep.cache.misses;
                totals.cache.verify_mismatches +=
                    sweep.cache.verify_mismatches;
                totals.cache.bytes_written +=
                    sweep.cache.bytes_written;
                totals.cache.host_seconds_saved +=
                    sweep.cache.host_seconds_saved;
                reg.counter("svc.batches.executed").inc();
                reg.counter("svc.jobs.executed")
                    .inc(static_cast<uint64_t>(outs.size()));
                reg.counter("svc.jobs.failed")
                    .inc(sweep.failed_jobs);
            } else {
                batch->error = error;
                reg.counter("svc.batches.errored").inc();
            }
            batch->state = Batch::State::kDone;
            if (journal)
                journal->batchDone(batch_id, batch->stats,
                                   batch->error);
        }
    }

    HandleResult
    handle(const std::string &request_text)
    {
        HandleResult r;
        try {
            const JsonValue req = parseJson(request_text);
            const std::string op = req.at("op").asString();
            if (op == "ping") {
                JsonWriter jw;
                jw.beginObject();
                jw.field("ok", true);
                jw.endObject();
                r.json = jw.str();
            } else if (op == "stats") {
                r.json = handleStats();
            } else if (op == "metrics") {
                r.json = handleMetrics(req);
            } else if (op == "submit") {
                r.json = handleSubmit(req, request_text);
            } else if (op == "status") {
                r.json = handleStatus(req);
            } else if (op == "result") {
                r.json = handleResultOp(req);
            } else if (op == "health") {
                r.json = handleHealth();
            } else if (op == "shutdown") {
                JsonWriter jw;
                jw.beginObject();
                jw.field("ok", true);
                jw.endObject();
                r.json = jw.str();
                r.shutdown = true;
            } else {
                SPT_FATAL("unknown op \"" << op << "\"");
            }
        } catch (const std::exception &e) {
            // A malformed request becomes a structured error frame;
            // the connection and the daemon live on.
            r.json = errorResponse(e.what());
            r.shutdown = false;
        }
        return r;
    }

    std::string
    handleStats()
    {
        std::lock_guard<std::mutex> lock(mu);
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        jw.field("workers", static_cast<uint64_t>(runner.workers()));
        jw.field("pending",
                 static_cast<uint64_t>(queue.size()));
        jw.field("batches_executed", totals.batches_executed);
        jw.field("jobs_executed", totals.jobs_executed);
        jw.field("failed_jobs", totals.failed_jobs);
        // Point-in-time executor state: "pending" alone could not
        // distinguish an idle daemon from one wedged mid-batch.
        jw.field("queue_depth",
                 static_cast<uint64_t>(queue.size()));
        jw.field("inflight_batch", inflight_batch);
        jw.field("recovered_batches", totals.recovered_batches);
        jw.field("overloaded_rejects", totals.overloaded_rejects);
        jw.field("dedup_hits", totals.dedup_hits);
        jw.field("draining", draining);
        jw.field("cache_dir", opt.cache_dir);
        jw.field("cache_mode",
                 opt.cache_dir.empty()
                     ? "off"
                     : cacheModeName(opt.cache_mode));
        jw.key("cache");
        writeCacheStats(jw, totals.cache);
        jw.endObject();
        return jw.str();
    }

    static void
    writeCacheStats(JsonWriter &jw, const CacheStats &c)
    {
        jw.beginObject();
        jw.field("hits", c.hits);
        jw.field("misses", c.misses);
        jw.field("verify_mismatches", c.verify_mismatches);
        jw.field("bytes_written", c.bytes_written);
        jw.field("host_seconds_saved", c.host_seconds_saved, 6);
        jw.endObject();
    }

    /** The "health" op (DESIGN.md §16): everything an operator —
     *  or the CI recovery gate, or spt_top --health — needs to
     *  judge "is this daemon alive, current, and durable": drain
     *  state, queue/executor occupancy, recovery provenance and
     *  journal integrity, including write failures (a daemon that
     *  lost durability keeps serving but must say so). */
    std::string
    handleHealth()
    {
        const double uptime =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started_at)
                .count();
        std::lock_guard<std::mutex> lock(mu);
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        jw.field("draining", draining);
        jw.field("stopping", stopping);
        jw.field("uptime_seconds", uptime, 3);
        jw.field("workers",
                 static_cast<uint64_t>(runner.workers()));
        jw.field("queue_depth",
                 static_cast<uint64_t>(queue.size()));
        jw.field("max_queue", opt.max_queue);
        jw.field("inflight_batch", inflight_batch);
        jw.field("live_batches",
                 static_cast<uint64_t>(batches.size()));
        jw.field("batches_executed", totals.batches_executed);
        jw.field("recovered_batches", totals.recovered_batches);
        jw.field("overloaded_rejects", totals.overloaded_rejects);
        jw.field("dedup_hits", totals.dedup_hits);
        jw.field("request_timeout_ms",
                 static_cast<uint64_t>(opt.request_timeout_ms));
        jw.field("cache_dir", opt.cache_dir);
        jw.field("cache_mode",
                 opt.cache_dir.empty()
                     ? "off"
                     : cacheModeName(opt.cache_mode));
        jw.key("journal");
        jw.beginObject();
        jw.field("enabled", journal != nullptr);
        if (journal) {
            jw.field("dir", journal->dir());
            jw.field("bytes", journal->bytes());
            jw.field("live_batches", journal->liveBatches());
            jw.field("incomplete_batches",
                     journal->incompleteBatches());
            jw.field("write_failures", journal->writeFailures());
            const BatchJournal::Recovery &rec =
                journal->recovery();
            jw.key("recovered");
            jw.beginObject();
            jw.field("at", rec.recovered_at);
            jw.field("batches",
                     static_cast<uint64_t>(rec.batches.size()));
            jw.field("records", rec.records);
            jw.field("dropped_bytes", rec.dropped_bytes);
            jw.endObject();
        }
        jw.endObject();
        jw.endObject();
        return jw.str();
    }

    static const char *
    slotStateName(ProgressBoard::SlotState s)
    {
        switch (s) {
        case ProgressBoard::SlotState::kIdle: return "idle";
        case ProgressBoard::SlotState::kRunning: return "running";
        case ProgressBoard::SlotState::kDone: return "done";
        }
        return "?";
    }

    /** Per-slot live progress of the batch the executor is running
     *  (the global board belongs to the in-flight sweep): summary
     *  counts plus one record per *running* slot — the tail an
     *  operator actually reads; idle/done slots are just counts. */
    static void
    writeProgress(JsonWriter &jw)
    {
        const auto slots = ProgressBoard::global().snapshot();
        uint64_t idle = 0, running = 0, done = 0;
        for (const auto &s : slots) {
            switch (s.state) {
            case ProgressBoard::SlotState::kIdle: ++idle; break;
            case ProgressBoard::SlotState::kRunning:
                ++running;
                break;
            case ProgressBoard::SlotState::kDone: ++done; break;
            }
        }
        jw.beginObject();
        jw.field("slots", static_cast<uint64_t>(slots.size()));
        jw.field("idle", idle);
        jw.field("running", running);
        jw.field("done", done);
        jw.key("running_slots");
        jw.beginArray();
        for (const auto &s : slots) {
            if (s.state != ProgressBoard::SlotState::kRunning)
                continue;
            jw.beginObject();
            jw.field("slot", static_cast<uint64_t>(s.slot));
            jw.field("job", s.label);
            jw.field("cycles", s.cycles);
            jw.field("instructions", s.instructions);
            jw.field("host_s", s.host_seconds, 3);
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
    }

    std::string
    handleMetrics(const JsonValue &req)
    {
        const std::string format = req.getString("format", "json");
        const MetricsSnapshot snap =
            MetricsRegistry::global().snapshot();
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        if (format == "prometheus") {
            jw.field("text", snap.toPrometheus());
        } else if (format == "json") {
            jw.key("metrics");
            jw.raw(snap.toJson());
            jw.key("progress");
            writeProgress(jw);
            std::lock_guard<std::mutex> lock(mu);
            jw.field("queue_depth",
                     static_cast<uint64_t>(queue.size()));
            jw.field("inflight_batch", inflight_batch);
        } else {
            SPT_FATAL("unknown metrics format \"" << format
                      << "\" (want json|prometheus)");
        }
        jw.endObject();
        return jw.str();
    }

    /** Answers a submit without enqueuing when admission says so:
     *  draining/stopping, a duplicate token (idempotent
     *  resubmission -> the existing batch id), or a full queue
     *  (structured "overloaded" instead of unbounded memory
     *  growth). "" means admit. Caller holds mu. */
    std::string
    preAnswerSubmit(const std::string &token)
    {
        if (draining || stopping)
            return errorResponseCode(
                "draining",
                "daemon is draining; retry after restart");
        if (!token.empty()) {
            const auto it = token_to_batch.find(token);
            if (it != token_to_batch.end()) {
                ++totals.dedup_hits;
                MetricsRegistry::global()
                    .counter("svc.submits.deduped")
                    .inc();
                const auto bit = batches.find(it->second);
                JsonWriter jw;
                jw.beginObject();
                jw.field("ok", true);
                jw.field("batch", it->second);
                jw.field("span", bit != batches.end()
                                     ? bit->second->span
                                     : "");
                jw.field("dup", true);
                jw.endObject();
                return jw.str();
            }
        }
        if (queue.size() >= opt.max_queue) {
            ++totals.overloaded_rejects;
            MetricsRegistry::global()
                .counter("svc.submits.overloaded")
                .inc();
            return errorResponseCode(
                "overloaded",
                "queue full (" + std::to_string(queue.size()) +
                    " batches queued, max " +
                    std::to_string(opt.max_queue) +
                    "); retry later");
        }
        return "";
    }

    /** Decodes a submit request into a Batch with result storage
     *  pre-sized (shared by live submits and journal replay). */
    std::unique_ptr<Batch>
    buildBatch(const JsonValue &req)
    {
        auto batch = std::make_unique<Batch>();
        batch->capture_evidence =
            req.getBool("capture_evidence", false);
        for (const JsonValue &hex :
             req.at("programs").asArray()) {
            std::istringstream is(hexDecode(hex.asString()));
            batch->programs.push_back(
                std::make_unique<Program>(programLoad(is)));
        }
        if (req.has("maps"))
            for (const JsonValue &hex : req.at("maps").asArray()) {
                std::istringstream is(hexDecode(hex.asString()));
                batch->maps.push_back(
                    std::make_unique<KnowledgeMap>(
                        KnowledgeMap::load(is)));
            }
        for (const JsonValue &jv : req.at("jobs").asArray())
            batch->grid.push_back(decodeJob(jv, *batch));
        batch->outcome_hex.resize(batch->grid.size());
        batch->memoized.assign(batch->grid.size(), 0);
        batch->have_outcome.assign(batch->grid.size(), 0);
        return batch;
    }

    std::string
    handleSubmit(const JsonValue &req,
                 const std::string &request_text)
    {
        const std::string token = req.getString("token", "");
        // Cheap admission answers (dup / draining / overloaded)
        // before the expensive program/map decode.
        {
            std::lock_guard<std::mutex> lock(mu);
            const std::string pre = preAnswerSubmit(token);
            if (!pre.empty())
                return pre;
        }
        auto batch = buildBatch(req);
        batch->token = token;

        // Open the batch span under the client's span (if it sent
        // one); the submit response carries it back so both sides
        // log the same id.
        const std::string client_span = req.getString("span", "");
        batch->span = EventLog::newSpanId();
        const std::string batch_span = batch->span;
        const uint64_t jobs = batch->grid.size();

        uint64_t id = 0;
        uint64_t depth = 0;
        {
            std::lock_guard<std::mutex> lock(mu);
            // Re-check under the lock: another connection may have
            // submitted the same token — or drain may have begun —
            // while this one was decoding.
            const std::string pre = preAnswerSubmit(token);
            if (!pre.empty())
                return pre;
            id = next_batch++;
            batch->id = id;
            if (!token.empty())
                token_to_batch[token] = id;
            queue.push_back(batch.get());
            batches[id] = std::move(batch);
            depth = queue.size();
            // SUBMIT is journaled under the service lock so the
            // journal's record order matches id order.
            if (journal)
                journal->submit(id, token, request_text);
            cv.notify_all();
        }
        MetricsRegistry::global().counter("svc.batches.submitted")
            .inc();
        MetricsRegistry::global().gauge("svc.queue_depth")
            .set(static_cast<int64_t>(depth));
        EventLog::global().emit(EventLevel::kInfo, "svc", "submit",
                                EventFields()
                                    .num("batch", id)
                                    .num("jobs", jobs)
                                    .num("queue_depth", depth),
                                batch_span, client_span);
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        jw.field("batch", id);
        jw.field("span", batch_span);
        jw.field("dup", false);
        jw.endObject();
        return jw.str();
    }

    RunJob
    decodeJob(const JsonValue &o, Batch &batch)
    {
        RunJob job;
        const uint64_t prog = o.at("prog").asU64();
        if (prog >= batch.programs.size())
            SPT_FATAL("job program index " << prog
                      << " out of range");
        job.program = batch.programs[prog].get();
        if (o.has("km")) {
            const uint64_t km = o.at("km").asU64();
            if (km >= batch.maps.size())
                SPT_FATAL("job knowledge-map index " << km
                          << " out of range");
            job.engine.spt.knowledge_map = batch.maps[km].get();
        }
        job.engine.scheme =
            decodeEnum<ProtectionScheme>(o, "scheme");
        job.engine.spt.method =
            decodeEnum<UntaintMethod>(o, "method");
        job.engine.spt.shadow = decodeEnum<ShadowKind>(o, "shadow");
        job.engine.spt.broadcast_width =
            static_cast<unsigned>(o.at("bw").asU64());
        job.engine.spt.storage =
            decodeEnum<SptConfig::Storage>(o, "storage");
        job.engine.spt.mutation =
            decodeEnum<SptConfig::Mutation>(o, "mutation");
        job.attack_model = decodeEnum<AttackModel>(o, "attack");
        job.seed = o.at("seed").asU64();
        job.max_cycles = o.at("max_cycles").asU64();
        job.trace = o.getBool("trace", false);
        job.profile = o.getBool("profile", false);
        job.interval_stats = o.getU64("interval_stats", 0);
        job.faults.seed = o.getU64("fault_seed", 0);
        const auto &ppm = o.at("fault_ppm").asArray();
        if (ppm.size() != kNumFaultSites)
            SPT_FATAL("job fault_ppm has " << ppm.size()
                      << " entries, expected " << kNumFaultSites);
        for (std::size_t i = 0; i < kNumFaultSites; ++i) {
            const uint64_t rate = ppm[i].asU64();
            if (rate > UINT32_MAX)
                SPT_FATAL("job fault rate out of range: " << rate);
            job.faults.rate_ppm[i] = static_cast<uint32_t>(rate);
        }
        job.invariants = o.getBool("invariants", false);
        job.watchdog_cycles = o.getU64("watchdog", 0);
        job.wall_timeout_seconds = std::bit_cast<double>(
            o.getU64("wall_timeout_bits", 0));
        job.fast_forward = o.getBool("fast_forward", false);
        job.checkpoint_at = o.getU64("checkpoint_at", 0);
        job.checkpoint = o.getString("checkpoint", "");
        job.label = o.getString("label", "");
        return job;
    }

    /** {"ok":false,"code":"unknown-batch",...}: a machine-matchable
     *  shape, distinct from a queued batch (state "queued") and
     *  from transport errors — the resilient client reacts to it by
     *  resubmitting under its idempotency token (the daemon it is
     *  talking to may be a restart that never saw the submit). */
    static std::string
    unknownBatch(uint64_t id)
    {
        return errorResponseCode(
            "unknown-batch",
            "unknown batch " + std::to_string(id) +
                " (never submitted, or already fetched)");
    }

    std::string
    handleStatus(const JsonValue &req)
    {
        const uint64_t id = req.at("batch").asU64();
        const char *state = "queued";
        std::size_t jobs = 0;
        {
            std::lock_guard<std::mutex> lock(mu);
            const auto it = batches.find(id);
            if (it == batches.end())
                return unknownBatch(id);
            const Batch &b = *it->second;
            if (b.state == Batch::State::kRunning)
                state = "running";
            else if (b.state == Batch::State::kDone)
                state = "done";
            jobs = b.grid.size();
        }
        // Response rendered outside the service lock: the progress
        // snapshot takes the board's own lock, and a status probe
        // must never stall the executor.
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        jw.field("state", state);
        jw.field("jobs", static_cast<uint64_t>(jobs));
        if (std::string(state) == "running") {
            // The global board belongs to the in-flight sweep, i.e.
            // exactly this batch.
            jw.key("progress");
            writeProgress(jw);
        }
        jw.endObject();
        return jw.str();
    }

    /** Drops a finished batch: forget its token mapping and tell
     *  the journal its records are dead weight. Caller holds mu. */
    void
    releaseBatch(std::map<uint64_t,
                          std::unique_ptr<Batch>>::iterator it)
    {
        const uint64_t id = it->first;
        if (!it->second->token.empty())
            token_to_batch.erase(it->second->token);
        batches.erase(it);
        if (journal)
            journal->released(id);
    }

    std::string
    handleResultOp(const JsonValue &req)
    {
        const uint64_t id = req.at("batch").asU64();
        std::lock_guard<std::mutex> lock(mu);
        const auto it = batches.find(id);
        if (it == batches.end())
            return unknownBatch(id);
        Batch &b = *it->second;
        if (b.state != Batch::State::kDone)
            SPT_FATAL("batch " << id << " not finished");
        if (!b.error.empty()) {
            const std::string error = b.error;
            releaseBatch(it);
            SPT_FATAL("batch " << id
                      << " failed to execute: " << error);
        }
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        jw.key("outcomes");
        jw.beginArray();
        for (std::size_t i = 0; i < b.outcome_hex.size(); ++i) {
            jw.beginObject();
            jw.field("o", b.outcome_hex[i]);
            jw.field("memoized", b.memoized[i] != 0);
            jw.endObject();
        }
        jw.endArray();
        jw.key("stats");
        jw.beginObject();
        jw.field("workers",
                 static_cast<uint64_t>(b.stats.workers));
        jw.field("unique_jobs", b.stats.unique_jobs);
        jw.field("memo_hits", b.stats.memo_hits);
        jw.field("failed_jobs", b.stats.failed_jobs);
        jw.field("first_failure", b.stats.first_failure);
        jw.field("wall_seconds", b.stats.wall_seconds, 6);
        jw.field("cache_mode", b.stats.cache_mode);
        jw.field("cache_dir", b.stats.cache_dir);
        jw.key("cache");
        writeCacheStats(jw, b.stats.cache);
        jw.endObject();
        jw.endObject();
        // Fetching a result releases the batch (and its programs).
        releaseBatch(it);
        return jw.str();
    }
};

SweepService::SweepService(SweepServiceOptions opt)
    : impl_(new Impl(std::move(opt)))
{
}

SweepService::~SweepService()
{
    if (impl_->started) {
        impl_->initiateStop();
        impl_->join();
    }
    delete impl_;
}

void
SweepService::start()
{
    impl_->start();
}

void
SweepService::wait()
{
    impl_->join();
}

void
SweepService::stop()
{
    impl_->initiateStop();
}

void
SweepService::drain()
{
    impl_->initiateDrain();
}

const std::string &
SweepService::socketPath() const
{
    return impl_->opt.socket_path;
}

ServiceStats
SweepService::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    ServiceStats s = impl_->totals;
    s.queue_depth = impl_->queue.size();
    s.inflight_batch = impl_->inflight_batch;
    s.draining = impl_->draining;
    return s;
}

// --------------------------------------------------------------------
// Client
// --------------------------------------------------------------------

namespace {

/** Environment overrides, applied only to fields the policy left at
 *  their defaults — an explicit programmatic choice always wins. */
ServiceClientOptions
resolveClientOptions(const ServiceClientOptions &in)
{
    ServiceClientOptions out = in;
    const ServiceClientOptions defaults;
    const char *env = nullptr;
    if (out.poll_ms == defaults.poll_ms &&
        (env = std::getenv("SPT_SWEEP_POLL_MS")) != nullptr &&
        *env != '\0') {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != nullptr && *end == '\0')
            out.poll_ms = static_cast<unsigned>(v);
        else
            warn("SPT_SWEEP_POLL_MS ignored (not a number): " +
                 std::string(env));
    }
    if (out.deadline_seconds == defaults.deadline_seconds &&
        (env = std::getenv("SPT_SWEEP_DEADLINE")) != nullptr &&
        *env != '\0') {
        char *end = nullptr;
        const double v = std::strtod(env, &end);
        if (end != nullptr && *end == '\0' && v >= 0.0)
            out.deadline_seconds = v;
        else
            warn("SPT_SWEEP_DEADLINE ignored (not a number of "
                 "seconds): " + std::string(env));
    }
    if (out.max_retries == defaults.max_retries &&
        (env = std::getenv("SPT_SWEEP_RETRIES")) != nullptr &&
        *env != '\0') {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != nullptr && *end == '\0')
            out.max_retries = static_cast<unsigned>(v);
        else
            warn("SPT_SWEEP_RETRIES ignored (not a number): " +
                 std::string(env));
    }
    return out;
}

/** Overall wall-clock budget for one client operation. */
struct Deadline {
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    double seconds = 0.0;

    bool enabled() const { return seconds > 0.0; }

    double
    elapsed() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

    bool expired() const { return enabled() && elapsed() >= seconds; }

    /** Never sleep past the deadline. */
    uint32_t
    clampMs(uint32_t ms) const
    {
        if (!enabled())
            return ms;
        double rem_ms = (seconds - elapsed()) * 1000.0;
        if (rem_ms < 1.0)
            rem_ms = 1.0;
        return std::min(ms, static_cast<uint32_t>(rem_ms));
    }
};

/** connect() with a stall bound: non-blocking connect + poll, then
 *  back to blocking. Returns -1 with *err set (transient — the
 *  caller retries); only unusable configuration is fatal. */
int
connectTimed(const std::string &path, unsigned timeout_ms,
             std::string *err)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        ::close(fd);
        SPT_FATAL("sweep service: socket path too long: " << path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (errno != EINPROGRESS && errno != EAGAIN) {
            *err = std::strerror(errno);
            ::close(fd);
            return -1;
        }
        pollfd p{};
        p.fd = fd;
        p.events = POLLOUT;
        int pr;
        do {
            pr = ::poll(&p, 1,
                        timeout_ms == 0
                            ? -1
                            : static_cast<int>(timeout_ms));
        } while (pr < 0 && errno == EINTR);
        if (pr <= 0) {
            *err = pr == 0 ? "connect timed out"
                           : std::strerror(errno);
            ::close(fd);
            return -1;
        }
        int soerr = 0;
        socklen_t slen = sizeof soerr;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen);
        if (soerr != 0) {
            *err = std::strerror(soerr);
            ::close(fd);
            return -1;
        }
    }
    ::fcntl(fd, F_SETFL, flags); // back to blocking
    return fd;
}

/** A reconnecting connection to the daemon: one request/response
 *  exchange at a time, stall-bounded both ways. Any failure drops
 *  the socket so the next exchange reconnects fresh. */
struct Transport {
    std::string path;
    ServiceClientOptions opts;
    int fd = -1;

    Transport(std::string p, const ServiceClientOptions &o)
        : path(std::move(p)), opts(o)
    {
    }

    ~Transport() { drop(); }

    Transport(const Transport &) = delete;
    Transport &operator=(const Transport &) = delete;

    void
    drop()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }

    /** One exchange; "" on success, else the transport error (the
     *  socket is dropped so the caller's retry reconnects). */
    std::string
    once(const std::string &request, std::string *response)
    {
        if (fd < 0) {
            std::string err;
            fd = connectTimed(path, opts.connect_timeout_ms, &err);
            if (fd < 0)
                return "connect to " + path + ": " + err;
            setSendStall(fd, opts.frame_timeout_ms);
        }
        if (!writeFrame(fd, request)) {
            drop();
            return "connection lost while sending";
        }
        if (!readFrameTimed(fd, response, opts.frame_timeout_ms,
                            /*first_forever=*/false)) {
            drop();
            return "connection stalled or closed before response";
        }
        return "";
    }
};

/** One request with the full resilience loop: stall-bounded
 *  exchange, reconnect + jittered backoff on transport failure,
 *  FatalError when the deadline or the retry budget runs out. */
std::string
transactRaw(Transport &t, const Deadline &dl, RetryBackoff &bo,
            const std::string &request, const char *what)
{
    for (;;) {
        if (dl.expired())
            SPT_FATAL("sweep service deadline ("
                      << dl.seconds << "s) expired during "
                      << what);
        std::string response;
        const std::string err = t.once(request, &response);
        if (err.empty()) {
            bo.reset();
            return response;
        }
        MetricsRegistry::global()
            .counter("client.svc.transport_errors")
            .inc();
        if (!bo.canRetry())
            SPT_FATAL("sweep service " << what << " failed after "
                      << bo.attempt()
                      << " attempt(s): " << err);
        const uint32_t delay = dl.clampMs(bo.nextDelayMs());
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay));
    }
}

JsonValue
transact(Transport &t, const Deadline &dl, RetryBackoff &bo,
         const std::string &request, const char *what)
{
    return parseJson(transactRaw(t, dl, bo, request, what));
}

} // namespace

std::string
serviceRequest(const std::string &socket_path,
               const std::string &request_json)
{
    const ServiceClientOptions defaults;
    std::string err;
    const int fd = connectTimed(socket_path,
                                defaults.connect_timeout_ms, &err);
    if (fd < 0)
        SPT_FATAL("cannot connect to sweep daemon at "
                  << socket_path << ": " << err);
    struct Closer {
        int fd;
        ~Closer() { ::close(fd); }
    } closer{fd};
    setSendStall(fd, defaults.frame_timeout_ms);
    if (!writeFrame(fd, request_json))
        SPT_FATAL("sweep service: connection lost while sending");
    std::string response;
    if (!readFrameTimed(fd, &response, defaults.frame_timeout_ms,
                        /*first_forever=*/false))
        SPT_FATAL("sweep service: connection stalled or closed "
                  "before response");
    return response;
}

std::string
serviceRequest(const std::string &socket_path,
               const std::string &request_json,
               const ServiceClientOptions &opts_in)
{
    const ServiceClientOptions opts =
        resolveClientOptions(opts_in);
    Transport t(socket_path, opts);
    Deadline dl;
    dl.seconds = opts.deadline_seconds;
    RetryBackoff bo(
        RetryPolicy{opts.max_retries, opts.backoff_base_ms,
                    opts.backoff_max_ms},
        fnv1a64(request_json));
    return transactRaw(t, dl, bo, request_json, "request");
}

std::vector<RunOutcome>
runGridViaService(const std::string &socket_path,
                  const std::vector<RunJob> &grid,
                  const RunnerPolicy &policy, SweepStats *stats)
{
    const ServiceClientOptions opts =
        resolveClientOptions(policy.client);

    // Ship each distinct program / knowledge map once; jobs
    // reference them by index.
    std::vector<const Program *> programs;
    std::map<const Program *, uint64_t> prog_idx;
    std::vector<const KnowledgeMap *> maps;
    std::map<const KnowledgeMap *, uint64_t> km_idx;
    for (const RunJob &job : grid) {
        if (prog_idx.emplace(job.program, programs.size()).second)
            programs.push_back(job.program);
        const KnowledgeMap *km = job.engine.spt.knowledge_map;
        if (km != nullptr &&
            km_idx.emplace(km, maps.size()).second)
            maps.push_back(km);
    }

    // Client span: every record this sweep produces — here, in the
    // daemon, and in the daemon's runner — chains back to this id.
    EventLog &elog =
        policy.event_log ? *policy.event_log : EventLog::global();
    const std::string client_span = EventLog::newSpanId();

    // Idempotency token: what makes "retry by resubmitting" safe.
    // The same token resubmitted to the same (or a journal-restored)
    // daemon answers with the existing batch instead of running the
    // grid twice. Unique per submission, not deterministic — it
    // never reaches any result byte.
    static std::atomic<uint64_t> token_seq{0};
    std::ostringstream token_os;
    token_os << "c" << ::getpid() << "-" << ::time(nullptr) << "-"
             << token_seq.fetch_add(1);
    const std::string token = token_os.str();

    JsonWriter jw;
    jw.beginObject();
    jw.field("op", "submit");
    jw.field("capture_evidence", policy.capture_evidence);
    jw.field("span", client_span);
    jw.field("token", token);
    jw.key("programs");
    jw.beginArray();
    for (const Program *p : programs) {
        std::ostringstream os;
        programSave(*p, os);
        jw.value(hexEncode(os.str()));
    }
    jw.endArray();
    jw.key("maps");
    jw.beginArray();
    for (const KnowledgeMap *km : maps) {
        std::ostringstream os;
        km->save(os);
        jw.value(hexEncode(os.str()));
    }
    jw.endArray();
    jw.key("jobs");
    jw.beginArray();
    for (const RunJob &job : grid) {
        const KnowledgeMap *km = job.engine.spt.knowledge_map;
        encodeJob(jw, job, prog_idx.at(job.program),
                  km != nullptr
                      ? static_cast<int64_t>(km_idx.at(km))
                      : -1);
    }
    jw.endArray();
    jw.endObject();
    const std::string submit_json = jw.str();

    Transport t(socket_path, opts);
    Deadline dl;
    dl.seconds = opts.deadline_seconds;
    // Jitter decorrelates concurrent clients but stays
    // reproducible: it derives from the token, not wall-clock
    // entropy (common/retry.h).
    RetryBackoff bo(
        RetryPolicy{opts.max_retries, opts.backoff_base_ms,
                    opts.backoff_max_ms},
        fnv1a64(token));

    uint64_t batch = 0;
    std::string batch_span;

    // Submit (and resubmit after a daemon restart): transport
    // failures are transact's problem; "overloaded"/"draining" are
    // admission answers — wait and re-ask without burning the
    // transport retry budget.
    const auto submitBatch = [&] {
        unsigned adm_delay = 25;
        for (;;) {
            const JsonValue resp =
                transact(t, dl, bo, submit_json, "submit");
            if (resp.getBool("ok", false)) {
                batch = resp.at("batch").asU64();
                batch_span = resp.getString("span", "");
                return;
            }
            const std::string code = resp.getString("code", "");
            if (code == "overloaded" || code == "draining") {
                if (dl.expired())
                    SPT_FATAL("sweep service deadline ("
                              << dl.seconds
                              << "s) expired while the daemon was "
                              << code);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        dl.clampMs(adm_delay)));
                adm_delay = std::min(adm_delay * 2, 250u);
                continue;
            }
            SPT_FATAL("sweep service submit failed: "
                      << resp.getString("error",
                                        "(no error text)"));
        }
    };
    const auto resubmit = [&] {
        MetricsRegistry::global()
            .counter("client.svc.resubmits")
            .inc();
        elog.emit(EventLevel::kWarn, "client",
                  "batch-resubmitted",
                  EventFields()
                      .num("old_batch", batch)
                      .str("token", token),
                  client_span, policy.parent_span);
        submitBatch();
    };

    submitBatch();
    elog.emit(EventLevel::kInfo, "client", "batch-submitted",
              EventFields()
                  .num("batch", batch)
                  .num("jobs", static_cast<uint64_t>(grid.size()))
                  .str("batch_span", batch_span)
                  .str("socket", socket_path),
              client_span, policy.parent_span);

    // Poll until done, then fetch; a daemon restart surfaces as
    // "unknown-batch" on either op and is healed by resubmitting
    // under the same token (a journaled daemon answers with the
    // recovered batch, dup=true; an unjournaled one re-runs — same
    // bytes either way, per the determinism contract).
    double poll_wait_seconds = 0.0;
    uint64_t polls = 0;
    const JsonValue rv = [&]() -> JsonValue {
        for (;;) {
            // Poll with a small backoff (or the fixed --poll-ms
            // cadence); the daemon answers status from memory so
            // this stays cheap even mid-batch.
            unsigned delay_ms = 2;
            for (;;) {
                JsonWriter sq;
                sq.beginObject();
                sq.field("op", "status");
                sq.field("batch", batch);
                sq.endObject();
                const JsonValue st =
                    transact(t, dl, bo, sq.str(), "status");
                if (!st.getBool("ok", false)) {
                    if (st.getString("code", "") ==
                        "unknown-batch") {
                        resubmit();
                        delay_ms = 2;
                        continue;
                    }
                    SPT_FATAL("sweep service status failed: "
                              << st.getString(
                                     "error",
                                     "(no error text)"));
                }
                if (st.at("state").asString() == "done")
                    break;
                if (dl.expired())
                    SPT_FATAL("sweep service deadline ("
                              << dl.seconds
                              << "s) expired waiting for batch "
                              << batch);
                const unsigned want =
                    opts.poll_ms != 0 ? opts.poll_ms : delay_ms;
                const uint32_t d = dl.clampMs(want);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(d));
                poll_wait_seconds += d / 1000.0;
                ++polls;
                if (opts.poll_ms == 0)
                    delay_ms = std::min(delay_ms * 2, 100u);
            }

            JsonWriter rq;
            rq.beginObject();
            rq.field("op", "result");
            rq.field("batch", batch);
            rq.endObject();
            const JsonValue r =
                transact(t, dl, bo, rq.str(), "result");
            if (r.getBool("ok", false))
                return r;
            if (r.getString("code", "") == "unknown-batch") {
                // Daemon restarted between "done" and the fetch.
                resubmit();
                continue;
            }
            SPT_FATAL("sweep service result failed: "
                      << r.getString("error", "(no error text)"));
        }
    }();

    const auto &arr = rv.at("outcomes").asArray();
    if (arr.size() != grid.size())
        SPT_FATAL("sweep service returned " << arr.size()
                  << " outcomes for " << grid.size() << " jobs");
    std::vector<RunOutcome> outcomes(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        outcomes[i] = ResultCache::decodeOutcome(
            hexDecode(arr[i].at("o").asString()));
        outcomes[i].memoized = arr[i].getBool("memoized", false);
        outcomes[i].job_desc = describeRunJob(grid[i]);
    }

    if (stats != nullptr) {
        const JsonValue &s = rv.at("stats");
        *stats = SweepStats{};
        stats->workers =
            static_cast<unsigned>(s.getU64("workers", 1));
        stats->unique_jobs = s.getU64("unique_jobs", 0);
        stats->memo_hits = s.getU64("memo_hits", 0);
        stats->failed_jobs = s.getU64("failed_jobs", 0);
        stats->first_failure = s.getString("first_failure", "");
        stats->wall_seconds = s.at("wall_seconds").asDouble();
        stats->cache_mode = s.getString("cache_mode", "off");
        stats->cache_dir = s.getString("cache_dir", "");
        const JsonValue &c = s.at("cache");
        stats->cache.hits = c.getU64("hits", 0);
        stats->cache.misses = c.getU64("misses", 0);
        stats->cache.verify_mismatches =
            c.getU64("verify_mismatches", 0);
        stats->cache.bytes_written = c.getU64("bytes_written", 0);
        stats->cache.host_seconds_saved =
            c.at("host_seconds_saved").asDouble();
        stats->via_service = true;
        stats->poll_wait_seconds = poll_wait_seconds;
        stats->polls = polls;
    }

    elog.emit(EventLevel::kInfo, "client", "batch-fetched",
              EventFields()
                  .num("batch", batch)
                  .num("jobs", static_cast<uint64_t>(grid.size())),
              client_span, policy.parent_span);

    // The daemon always runs keep_going (one bad job must not kill
    // it); re-impose fail-fast here. In-process runs rethrow the
    // original exception type — across the wire only the text
    // survives, so this becomes a FatalError carrying it.
    if (!policy.keep_going)
        for (const RunOutcome &out : outcomes)
            if (out.status == RunStatus::kCrash)
                SPT_FATAL("job " << out.job_desc
                          << " failed via sweep service: "
                          << out.error);
    return outcomes;
}

} // namespace spt
