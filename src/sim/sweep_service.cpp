#include "sim/sweep_service.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "common/event_log.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "core/knowledge_map.h"
#include "isa/program.h"
#include "sim/progress.h"

namespace spt {

namespace {

// --------------------------------------------------------------------
// Wire helpers: hex blobs and 4-byte-length-prefixed frames.
// --------------------------------------------------------------------

std::string
hexEncode(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const char c : bytes) {
        const uint8_t b = static_cast<uint8_t>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

std::string
hexDecode(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        SPT_FATAL("sweep service: odd-length hex blob");
    std::string out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hexNibble(hex[i]);
        const int lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            SPT_FATAL("sweep service: invalid hex blob");
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    return out;
}

constexpr uint32_t kMaxFrame = 1u << 30;

/** send/recv with MSG_NOSIGNAL so a peer that vanished produces an
 *  error return, not a process-killing SIGPIPE. */
bool
sendAll(int fd, const char *p, std::size_t n)
{
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

bool
recvAll(int fd, char *p, std::size_t n)
{
    while (n > 0) {
        const ssize_t r = ::recv(fd, p, n, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false; // EOF
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrame)
        return false;
    char len[4];
    const uint32_t n = static_cast<uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        len[i] = static_cast<char>((n >> (8 * i)) & 0xff);
    return sendAll(fd, len, 4) &&
           sendAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::string *payload)
{
    char len[4];
    if (!recvAll(fd, len, 4))
        return false;
    uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= uint32_t{static_cast<uint8_t>(len[i])} << (8 * i);
    if (n > kMaxFrame)
        return false;
    payload->resize(n);
    return n == 0 || recvAll(fd, payload->data(), n);
}

std::string
errorResponse(const std::string &message)
{
    JsonWriter jw;
    jw.beginObject();
    jw.field("ok", false);
    jw.field("error", message);
    jw.endObject();
    return jw.str();
}

void
requireOk(const JsonValue &resp, const char *what)
{
    if (!resp.getBool("ok", false))
        SPT_FATAL("sweep service " << what << " failed: "
                  << resp.getString("error", "(no error text)"));
}

// --------------------------------------------------------------------
// JOB codec (client encodes, daemon decodes). The program and
// knowledge map travel once per batch in "programs"/"maps" arrays;
// a job references them by index.
// --------------------------------------------------------------------

void
encodeJob(JsonWriter &jw, const RunJob &job, uint64_t prog_idx,
          int64_t km_idx)
{
    jw.beginObject();
    jw.field("prog", prog_idx);
    if (km_idx >= 0)
        jw.field("km", static_cast<uint64_t>(km_idx));
    jw.field("scheme", static_cast<uint64_t>(job.engine.scheme));
    jw.field("method",
             static_cast<uint64_t>(job.engine.spt.method));
    jw.field("shadow",
             static_cast<uint64_t>(job.engine.spt.shadow));
    jw.field("bw",
             static_cast<uint64_t>(job.engine.spt.broadcast_width));
    jw.field("storage",
             static_cast<uint64_t>(job.engine.spt.storage));
    jw.field("mutation",
             static_cast<uint64_t>(job.engine.spt.mutation));
    jw.field("attack", static_cast<uint64_t>(job.attack_model));
    jw.field("seed", job.seed);
    jw.field("max_cycles", job.max_cycles);
    jw.field("trace", job.trace);
    jw.field("profile", job.profile);
    jw.field("interval_stats", job.interval_stats);
    jw.field("fault_seed", job.faults.seed);
    jw.key("fault_ppm");
    jw.beginArray();
    for (const uint32_t ppm : job.faults.rate_ppm)
        jw.value(static_cast<uint64_t>(ppm));
    jw.endArray();
    jw.field("invariants", job.invariants);
    jw.field("watchdog", job.watchdog_cycles);
    // Bit pattern, not decimal text: the wall timeout must
    // round-trip exactly (it participates in jobKey()).
    jw.field("wall_timeout_bits",
             std::bit_cast<uint64_t>(job.wall_timeout_seconds));
    jw.field("fast_forward", job.fast_forward);
    jw.field("checkpoint_at", job.checkpoint_at);
    jw.field("checkpoint", job.checkpoint);
    jw.field("label", job.label);
    jw.endObject();
}

/** Representability check only (the enums are uint8_t): values the
 *  engine factory considers invalid still decode, crash that one
 *  job under the daemon's keep_going run, and come back classified
 *  kCrash — exactly what the same descriptor does in-process. */
template <typename Enum>
Enum
decodeEnum(const JsonValue &obj, const char *key)
{
    const uint64_t v = obj.at(key).asU64();
    if (v > 0xff)
        SPT_FATAL("sweep service: job field \"" << key
                  << "\" out of range: " << v);
    return static_cast<Enum>(v);
}

} // namespace

// --------------------------------------------------------------------
// Daemon
// --------------------------------------------------------------------

struct SweepService::Impl {
    /** One submitted grid plus the daemon-side objects its RunJobs
     *  point into; released when the result is fetched. */
    struct Batch {
        enum class State : uint8_t { kQueued, kRunning, kDone };

        bool capture_evidence = false;
        std::vector<std::unique_ptr<Program>> programs;
        std::vector<std::unique_ptr<KnowledgeMap>> maps;
        std::vector<RunJob> grid;
        State state = State::kQueued;
        std::vector<std::string> outcome_hex;
        std::vector<char> memoized;
        SweepStats stats;
        std::string error; ///< batch-level execution failure
        /** Daemon-side batch span (returned to the client at
         *  submit); the runner's sweep span nests under it. */
        std::string span;
    };

    struct HandleResult {
        std::string json;
        bool shutdown = false;
    };

    explicit Impl(SweepServiceOptions o)
        : opt(std::move(o)), runner(opt.jobs)
    {
    }

    SweepServiceOptions opt;
    ExpRunner runner;

    int listen_fd = -1;
    std::thread accept_thread;
    std::thread exec_thread;

    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
    bool started = false;
    std::vector<std::thread> conn_threads;
    std::set<int> conn_fds;
    uint64_t next_batch = 1;
    std::map<uint64_t, std::unique_ptr<Batch>> batches;
    std::deque<Batch *> queue; ///< submission order
    std::map<Batch *, uint64_t> batch_ids;
    ServiceStats totals;
    /** Batch id the executor holds right now; 0 when idle. */
    uint64_t inflight_batch = 0;

    void
    start()
    {
        listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd < 0)
            SPT_FATAL("sweep daemon: socket(): "
                      << std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opt.socket_path.size() >= sizeof addr.sun_path)
            SPT_FATAL("sweep daemon: socket path too long: "
                      << opt.socket_path);
        std::memcpy(addr.sun_path, opt.socket_path.c_str(),
                    opt.socket_path.size() + 1);
        ::unlink(opt.socket_path.c_str()); // stale socket file
        if (::bind(listen_fd,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof addr) != 0)
            SPT_FATAL("sweep daemon: cannot bind "
                      << opt.socket_path << ": "
                      << std::strerror(errno));
        if (::listen(listen_fd, 16) != 0)
            SPT_FATAL("sweep daemon: listen(): "
                      << std::strerror(errno));
        started = true;
        accept_thread = std::thread([this] { acceptLoop(); });
        exec_thread = std::thread([this] { execLoop(); });
    }

    void
    initiateStop()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopping)
                return;
            stopping = true;
        }
        cv.notify_all();
        // Unblocks accept() without closing the fd under the
        // accept thread's feet.
        if (listen_fd >= 0)
            ::shutdown(listen_fd, SHUT_RDWR);
    }

    void
    join()
    {
        if (accept_thread.joinable())
            accept_thread.join();
        if (exec_thread.joinable())
            exec_thread.join();
        // Idle connections block in recv(); break them so their
        // threads can be joined.
        std::vector<std::thread> conns;
        {
            std::lock_guard<std::mutex> lock(mu);
            for (const int fd : conn_fds)
                ::shutdown(fd, SHUT_RDWR);
            conns.swap(conn_threads);
        }
        for (std::thread &t : conns)
            t.join();
        if (listen_fd >= 0) {
            ::close(listen_fd);
            listen_fd = -1;
            ::unlink(opt.socket_path.c_str());
        }
    }

    void
    acceptLoop()
    {
        for (;;) {
            const int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                return; // shut down (or fatal); stop accepting
            }
            std::lock_guard<std::mutex> lock(mu);
            if (stopping) {
                ::close(fd);
                continue;
            }
            conn_fds.insert(fd);
            conn_threads.emplace_back(
                [this, fd] { connLoop(fd); });
        }
    }

    void
    connLoop(int fd)
    {
        std::string request;
        while (readFrame(fd, &request)) {
            const HandleResult r = handle(request);
            const bool sent = writeFrame(fd, r.json);
            if (r.shutdown)
                initiateStop();
            if (!sent || r.shutdown)
                break;
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            conn_fds.erase(fd);
        }
        ::close(fd);
    }

    void
    execLoop()
    {
        EventLog &elog = EventLog::global();
        MetricsRegistry &reg = MetricsRegistry::global();
        Gauge &g_queue = reg.gauge("svc.queue_depth");
        Gauge &g_inflight = reg.gauge("svc.inflight_batch");
        for (;;) {
            Batch *batch = nullptr;
            uint64_t batch_id = 0;
            {
                std::unique_lock<std::mutex> lock(mu);
                cv.wait(lock, [this] {
                    return stopping || !queue.empty();
                });
                if (queue.empty())
                    return; // stopping and drained
                batch = queue.front();
                queue.pop_front();
                batch->state = Batch::State::kRunning;
                batch_id = batch_ids.at(batch);
                inflight_batch = batch_id;
                g_queue.set(static_cast<int64_t>(queue.size()));
                g_inflight.set(static_cast<int64_t>(batch_id));
            }
            elog.emit(EventLevel::kInfo, "svc", "batch-start",
                      EventFields()
                          .num("batch", batch_id)
                          .num("jobs", static_cast<uint64_t>(
                                           batch->grid.size())),
                      batch->span);
            RunnerPolicy pol;
            // Always keep_going: a crashing job is classified into
            // its slot; the client re-imposes fail-fast semantics.
            pol.keep_going = true;
            pol.capture_evidence = batch->capture_evidence;
            pol.cache_dir = opt.cache_dir;
            pol.cache_mode = opt.cache_mode;
            pol.service_socket = kNoSweepService; // never recurse
            // Nest the runner's sweep span under this batch's span
            // so one batch's records chain client -> daemon ->
            // runner -> job slot.
            pol.parent_span = batch->span;
            std::vector<RunOutcome> outs;
            std::string error;
            try {
                outs = runner.run(batch->grid, pol);
            } catch (const std::exception &e) {
                error = e.what();
            }
            if (error.empty()) {
                elog.emit(EventLevel::kInfo, "svc", "batch-done",
                          EventFields()
                              .num("batch", batch_id)
                              .num("failed_jobs",
                                   runner.lastSweep().failed_jobs)
                              .real("wall_s",
                                    runner.lastSweep().wall_seconds),
                          batch->span);
            } else {
                // Batch-level execution failure (not a per-job
                // crash — those are classified into slots): dump
                // the flight recorder for the post-mortem before
                // answering the client.
                elog.emit(EventLevel::kWarn, "svc", "batch-error",
                          EventFields()
                              .num("batch", batch_id)
                              .str("error", error),
                          batch->span);
                report("[spt_sweepd] batch " +
                       std::to_string(batch_id) +
                       " failed: " + error);
                report("[spt_sweepd] flight recorder (most recent "
                       "last):");
                for (const std::string &line :
                     elog.recorder().dumpAll())
                    report("[spt_sweepd]   " + line);
            }
            std::lock_guard<std::mutex> lock(mu);
            inflight_batch = 0;
            g_inflight.set(0);
            if (error.empty()) {
                batch->stats = runner.lastSweep();
                batch->outcome_hex.reserve(outs.size());
                batch->memoized.reserve(outs.size());
                for (const RunOutcome &out : outs) {
                    batch->outcome_hex.push_back(
                        hexEncode(ResultCache::encodeOutcome(out)));
                    batch->memoized.push_back(out.memoized ? 1 : 0);
                }
                ++totals.batches_executed;
                totals.jobs_executed += outs.size();
                totals.failed_jobs += batch->stats.failed_jobs;
                totals.cache.hits += batch->stats.cache.hits;
                totals.cache.misses += batch->stats.cache.misses;
                totals.cache.verify_mismatches +=
                    batch->stats.cache.verify_mismatches;
                totals.cache.bytes_written +=
                    batch->stats.cache.bytes_written;
                totals.cache.host_seconds_saved +=
                    batch->stats.cache.host_seconds_saved;
                reg.counter("svc.batches.executed").inc();
                reg.counter("svc.jobs.executed")
                    .inc(static_cast<uint64_t>(outs.size()));
                reg.counter("svc.jobs.failed")
                    .inc(batch->stats.failed_jobs);
            } else {
                batch->error = error;
                reg.counter("svc.batches.errored").inc();
            }
            batch->state = Batch::State::kDone;
        }
    }

    HandleResult
    handle(const std::string &request_text)
    {
        HandleResult r;
        try {
            const JsonValue req = parseJson(request_text);
            const std::string op = req.at("op").asString();
            if (op == "ping") {
                JsonWriter jw;
                jw.beginObject();
                jw.field("ok", true);
                jw.endObject();
                r.json = jw.str();
            } else if (op == "stats") {
                r.json = handleStats();
            } else if (op == "metrics") {
                r.json = handleMetrics(req);
            } else if (op == "submit") {
                r.json = handleSubmit(req);
            } else if (op == "status") {
                r.json = handleStatus(req);
            } else if (op == "result") {
                r.json = handleResultOp(req);
            } else if (op == "shutdown") {
                JsonWriter jw;
                jw.beginObject();
                jw.field("ok", true);
                jw.endObject();
                r.json = jw.str();
                r.shutdown = true;
            } else {
                SPT_FATAL("unknown op \"" << op << "\"");
            }
        } catch (const std::exception &e) {
            // A malformed request becomes a structured error frame;
            // the connection and the daemon live on.
            r.json = errorResponse(e.what());
            r.shutdown = false;
        }
        return r;
    }

    std::string
    handleStats()
    {
        std::lock_guard<std::mutex> lock(mu);
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        jw.field("workers", static_cast<uint64_t>(runner.workers()));
        jw.field("pending",
                 static_cast<uint64_t>(queue.size()));
        jw.field("batches_executed", totals.batches_executed);
        jw.field("jobs_executed", totals.jobs_executed);
        jw.field("failed_jobs", totals.failed_jobs);
        // Point-in-time executor state: "pending" alone could not
        // distinguish an idle daemon from one wedged mid-batch.
        jw.field("queue_depth",
                 static_cast<uint64_t>(queue.size()));
        jw.field("inflight_batch", inflight_batch);
        jw.field("cache_dir", opt.cache_dir);
        jw.field("cache_mode",
                 opt.cache_dir.empty()
                     ? "off"
                     : cacheModeName(opt.cache_mode));
        jw.key("cache");
        writeCacheStats(jw, totals.cache);
        jw.endObject();
        return jw.str();
    }

    static void
    writeCacheStats(JsonWriter &jw, const CacheStats &c)
    {
        jw.beginObject();
        jw.field("hits", c.hits);
        jw.field("misses", c.misses);
        jw.field("verify_mismatches", c.verify_mismatches);
        jw.field("bytes_written", c.bytes_written);
        jw.field("host_seconds_saved", c.host_seconds_saved, 6);
        jw.endObject();
    }

    static const char *
    slotStateName(ProgressBoard::SlotState s)
    {
        switch (s) {
        case ProgressBoard::SlotState::kIdle: return "idle";
        case ProgressBoard::SlotState::kRunning: return "running";
        case ProgressBoard::SlotState::kDone: return "done";
        }
        return "?";
    }

    /** Per-slot live progress of the batch the executor is running
     *  (the global board belongs to the in-flight sweep): summary
     *  counts plus one record per *running* slot — the tail an
     *  operator actually reads; idle/done slots are just counts. */
    static void
    writeProgress(JsonWriter &jw)
    {
        const auto slots = ProgressBoard::global().snapshot();
        uint64_t idle = 0, running = 0, done = 0;
        for (const auto &s : slots) {
            switch (s.state) {
            case ProgressBoard::SlotState::kIdle: ++idle; break;
            case ProgressBoard::SlotState::kRunning:
                ++running;
                break;
            case ProgressBoard::SlotState::kDone: ++done; break;
            }
        }
        jw.beginObject();
        jw.field("slots", static_cast<uint64_t>(slots.size()));
        jw.field("idle", idle);
        jw.field("running", running);
        jw.field("done", done);
        jw.key("running_slots");
        jw.beginArray();
        for (const auto &s : slots) {
            if (s.state != ProgressBoard::SlotState::kRunning)
                continue;
            jw.beginObject();
            jw.field("slot", static_cast<uint64_t>(s.slot));
            jw.field("job", s.label);
            jw.field("cycles", s.cycles);
            jw.field("instructions", s.instructions);
            jw.field("host_s", s.host_seconds, 3);
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
    }

    std::string
    handleMetrics(const JsonValue &req)
    {
        const std::string format = req.getString("format", "json");
        const MetricsSnapshot snap =
            MetricsRegistry::global().snapshot();
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        if (format == "prometheus") {
            jw.field("text", snap.toPrometheus());
        } else if (format == "json") {
            jw.key("metrics");
            jw.raw(snap.toJson());
            jw.key("progress");
            writeProgress(jw);
            std::lock_guard<std::mutex> lock(mu);
            jw.field("queue_depth",
                     static_cast<uint64_t>(queue.size()));
            jw.field("inflight_batch", inflight_batch);
        } else {
            SPT_FATAL("unknown metrics format \"" << format
                      << "\" (want json|prometheus)");
        }
        jw.endObject();
        return jw.str();
    }

    std::string
    handleSubmit(const JsonValue &req)
    {
        auto batch = std::make_unique<Batch>();
        batch->capture_evidence =
            req.getBool("capture_evidence", false);
        for (const JsonValue &hex :
             req.at("programs").asArray()) {
            std::istringstream is(hexDecode(hex.asString()));
            batch->programs.push_back(
                std::make_unique<Program>(programLoad(is)));
        }
        if (req.has("maps"))
            for (const JsonValue &hex : req.at("maps").asArray()) {
                std::istringstream is(hexDecode(hex.asString()));
                batch->maps.push_back(
                    std::make_unique<KnowledgeMap>(
                        KnowledgeMap::load(is)));
            }
        for (const JsonValue &jv : req.at("jobs").asArray())
            batch->grid.push_back(decodeJob(jv, *batch));

        // Open the batch span under the client's span (if it sent
        // one); the submit response carries it back so both sides
        // log the same id.
        const std::string client_span = req.getString("span", "");
        batch->span = EventLog::newSpanId();
        const std::string batch_span = batch->span;
        const uint64_t jobs = batch->grid.size();

        uint64_t id = 0;
        uint64_t depth = 0;
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopping)
                SPT_FATAL("daemon is shutting down");
            id = next_batch++;
            queue.push_back(batch.get());
            batch_ids[batch.get()] = id;
            batches[id] = std::move(batch);
            depth = queue.size();
            cv.notify_all();
        }
        MetricsRegistry::global().counter("svc.batches.submitted")
            .inc();
        MetricsRegistry::global().gauge("svc.queue_depth")
            .set(static_cast<int64_t>(depth));
        EventLog::global().emit(EventLevel::kInfo, "svc", "submit",
                                EventFields()
                                    .num("batch", id)
                                    .num("jobs", jobs)
                                    .num("queue_depth", depth),
                                batch_span, client_span);
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        jw.field("batch", id);
        jw.field("span", batch_span);
        jw.endObject();
        return jw.str();
    }

    RunJob
    decodeJob(const JsonValue &o, Batch &batch)
    {
        RunJob job;
        const uint64_t prog = o.at("prog").asU64();
        if (prog >= batch.programs.size())
            SPT_FATAL("job program index " << prog
                      << " out of range");
        job.program = batch.programs[prog].get();
        if (o.has("km")) {
            const uint64_t km = o.at("km").asU64();
            if (km >= batch.maps.size())
                SPT_FATAL("job knowledge-map index " << km
                          << " out of range");
            job.engine.spt.knowledge_map = batch.maps[km].get();
        }
        job.engine.scheme =
            decodeEnum<ProtectionScheme>(o, "scheme");
        job.engine.spt.method =
            decodeEnum<UntaintMethod>(o, "method");
        job.engine.spt.shadow = decodeEnum<ShadowKind>(o, "shadow");
        job.engine.spt.broadcast_width =
            static_cast<unsigned>(o.at("bw").asU64());
        job.engine.spt.storage =
            decodeEnum<SptConfig::Storage>(o, "storage");
        job.engine.spt.mutation =
            decodeEnum<SptConfig::Mutation>(o, "mutation");
        job.attack_model = decodeEnum<AttackModel>(o, "attack");
        job.seed = o.at("seed").asU64();
        job.max_cycles = o.at("max_cycles").asU64();
        job.trace = o.getBool("trace", false);
        job.profile = o.getBool("profile", false);
        job.interval_stats = o.getU64("interval_stats", 0);
        job.faults.seed = o.getU64("fault_seed", 0);
        const auto &ppm = o.at("fault_ppm").asArray();
        if (ppm.size() != kNumFaultSites)
            SPT_FATAL("job fault_ppm has " << ppm.size()
                      << " entries, expected " << kNumFaultSites);
        for (std::size_t i = 0; i < kNumFaultSites; ++i) {
            const uint64_t rate = ppm[i].asU64();
            if (rate > UINT32_MAX)
                SPT_FATAL("job fault rate out of range: " << rate);
            job.faults.rate_ppm[i] = static_cast<uint32_t>(rate);
        }
        job.invariants = o.getBool("invariants", false);
        job.watchdog_cycles = o.getU64("watchdog", 0);
        job.wall_timeout_seconds = std::bit_cast<double>(
            o.getU64("wall_timeout_bits", 0));
        job.fast_forward = o.getBool("fast_forward", false);
        job.checkpoint_at = o.getU64("checkpoint_at", 0);
        job.checkpoint = o.getString("checkpoint", "");
        job.label = o.getString("label", "");
        return job;
    }

    /** {"ok":false,"code":"unknown-batch",...}: a machine-matchable
     *  shape, distinct from a queued batch (state "queued") and
     *  from transport errors — before this, a client polling a
     *  fetched/mistyped id got the same unstructured error as any
     *  malformed request. */
    static std::string
    unknownBatch(uint64_t id)
    {
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", false);
        jw.field("code", "unknown-batch");
        jw.field("error",
                 "unknown batch " + std::to_string(id) +
                     " (never submitted, or already fetched)");
        jw.endObject();
        return jw.str();
    }

    std::string
    handleStatus(const JsonValue &req)
    {
        const uint64_t id = req.at("batch").asU64();
        const char *state = "queued";
        std::size_t jobs = 0;
        {
            std::lock_guard<std::mutex> lock(mu);
            const auto it = batches.find(id);
            if (it == batches.end())
                return unknownBatch(id);
            const Batch &b = *it->second;
            if (b.state == Batch::State::kRunning)
                state = "running";
            else if (b.state == Batch::State::kDone)
                state = "done";
            jobs = b.grid.size();
        }
        // Response rendered outside the service lock: the progress
        // snapshot takes the board's own lock, and a status probe
        // must never stall the executor.
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        jw.field("state", state);
        jw.field("jobs", static_cast<uint64_t>(jobs));
        if (std::string(state) == "running") {
            // The global board belongs to the in-flight sweep, i.e.
            // exactly this batch.
            jw.key("progress");
            writeProgress(jw);
        }
        jw.endObject();
        return jw.str();
    }

    std::string
    handleResultOp(const JsonValue &req)
    {
        const uint64_t id = req.at("batch").asU64();
        std::lock_guard<std::mutex> lock(mu);
        const auto it = batches.find(id);
        if (it == batches.end())
            return unknownBatch(id);
        Batch &b = *it->second;
        if (b.state != Batch::State::kDone)
            SPT_FATAL("batch " << id << " not finished");
        if (!b.error.empty()) {
            const std::string error = b.error;
            batch_ids.erase(&b);
            batches.erase(it);
            SPT_FATAL("batch " << id
                      << " failed to execute: " << error);
        }
        JsonWriter jw;
        jw.beginObject();
        jw.field("ok", true);
        jw.key("outcomes");
        jw.beginArray();
        for (std::size_t i = 0; i < b.outcome_hex.size(); ++i) {
            jw.beginObject();
            jw.field("o", b.outcome_hex[i]);
            jw.field("memoized", b.memoized[i] != 0);
            jw.endObject();
        }
        jw.endArray();
        jw.key("stats");
        jw.beginObject();
        jw.field("workers",
                 static_cast<uint64_t>(b.stats.workers));
        jw.field("unique_jobs", b.stats.unique_jobs);
        jw.field("memo_hits", b.stats.memo_hits);
        jw.field("failed_jobs", b.stats.failed_jobs);
        jw.field("first_failure", b.stats.first_failure);
        jw.field("wall_seconds", b.stats.wall_seconds, 6);
        jw.field("cache_mode", b.stats.cache_mode);
        jw.field("cache_dir", b.stats.cache_dir);
        jw.key("cache");
        writeCacheStats(jw, b.stats.cache);
        jw.endObject();
        jw.endObject();
        // Fetching a result releases the batch (and its programs).
        batch_ids.erase(&b);
        batches.erase(it);
        return jw.str();
    }
};

SweepService::SweepService(SweepServiceOptions opt)
    : impl_(new Impl(std::move(opt)))
{
}

SweepService::~SweepService()
{
    if (impl_->started) {
        impl_->initiateStop();
        impl_->join();
    }
    delete impl_;
}

void
SweepService::start()
{
    impl_->start();
}

void
SweepService::wait()
{
    impl_->join();
}

void
SweepService::stop()
{
    impl_->initiateStop();
}

const std::string &
SweepService::socketPath() const
{
    return impl_->opt.socket_path;
}

ServiceStats
SweepService::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    ServiceStats s = impl_->totals;
    s.queue_depth = impl_->queue.size();
    s.inflight_batch = impl_->inflight_batch;
    return s;
}

// --------------------------------------------------------------------
// Client
// --------------------------------------------------------------------

namespace {

int
connectTo(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        SPT_FATAL("sweep service: socket(): "
                  << std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        ::close(fd);
        SPT_FATAL("sweep service: socket path too long: " << path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        SPT_FATAL("cannot connect to sweep daemon at " << path
                  << ": " << std::strerror(err));
    }
    return fd;
}

/** RAII socket so SPT_FATAL paths cannot leak the fd. */
struct Conn {
    explicit Conn(const std::string &path) : fd(connectTo(path)) {}
    ~Conn() { ::close(fd); }
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;
    int fd;
};

std::string
roundTrip(int fd, const std::string &request)
{
    if (!writeFrame(fd, request))
        SPT_FATAL("sweep service: connection lost while sending");
    std::string response;
    if (!readFrame(fd, &response))
        SPT_FATAL("sweep service: connection closed before "
                  "response");
    return response;
}

} // namespace

std::string
serviceRequest(const std::string &socket_path,
               const std::string &request_json)
{
    Conn conn(socket_path);
    return roundTrip(conn.fd, request_json);
}

std::vector<RunOutcome>
runGridViaService(const std::string &socket_path,
                  const std::vector<RunJob> &grid,
                  const RunnerPolicy &policy, SweepStats *stats)
{
    // Ship each distinct program / knowledge map once; jobs
    // reference them by index.
    std::vector<const Program *> programs;
    std::map<const Program *, uint64_t> prog_idx;
    std::vector<const KnowledgeMap *> maps;
    std::map<const KnowledgeMap *, uint64_t> km_idx;
    for (const RunJob &job : grid) {
        if (prog_idx.emplace(job.program, programs.size()).second)
            programs.push_back(job.program);
        const KnowledgeMap *km = job.engine.spt.knowledge_map;
        if (km != nullptr &&
            km_idx.emplace(km, maps.size()).second)
            maps.push_back(km);
    }

    // Client span: every record this sweep produces — here, in the
    // daemon, and in the daemon's runner — chains back to this id.
    EventLog &elog =
        policy.event_log ? *policy.event_log : EventLog::global();
    const std::string client_span = EventLog::newSpanId();

    JsonWriter jw;
    jw.beginObject();
    jw.field("op", "submit");
    jw.field("capture_evidence", policy.capture_evidence);
    jw.field("span", client_span);
    jw.key("programs");
    jw.beginArray();
    for (const Program *p : programs) {
        std::ostringstream os;
        programSave(*p, os);
        jw.value(hexEncode(os.str()));
    }
    jw.endArray();
    jw.key("maps");
    jw.beginArray();
    for (const KnowledgeMap *km : maps) {
        std::ostringstream os;
        km->save(os);
        jw.value(hexEncode(os.str()));
    }
    jw.endArray();
    jw.key("jobs");
    jw.beginArray();
    for (const RunJob &job : grid) {
        const KnowledgeMap *km = job.engine.spt.knowledge_map;
        encodeJob(jw, job, prog_idx.at(job.program),
                  km != nullptr
                      ? static_cast<int64_t>(km_idx.at(km))
                      : -1);
    }
    jw.endArray();
    jw.endObject();

    Conn conn(socket_path);
    const JsonValue submitted =
        parseJson(roundTrip(conn.fd, jw.str()));
    requireOk(submitted, "submit");
    const uint64_t batch = submitted.at("batch").asU64();
    const std::string batch_span = submitted.getString("span", "");
    elog.emit(EventLevel::kInfo, "client", "batch-submitted",
              EventFields()
                  .num("batch", batch)
                  .num("jobs", static_cast<uint64_t>(grid.size()))
                  .str("batch_span", batch_span)
                  .str("socket", socket_path),
              client_span, policy.parent_span);

    // Poll with a small backoff; the daemon answers status from
    // memory so this stays cheap even mid-batch.
    unsigned delay_ms = 2;
    for (;;) {
        JsonWriter sq;
        sq.beginObject();
        sq.field("op", "status");
        sq.field("batch", batch);
        sq.endObject();
        const JsonValue st =
            parseJson(roundTrip(conn.fd, sq.str()));
        requireOk(st, "status");
        if (st.at("state").asString() == "done")
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
        delay_ms = std::min(delay_ms * 2, 100u);
    }

    JsonWriter rq;
    rq.beginObject();
    rq.field("op", "result");
    rq.field("batch", batch);
    rq.endObject();
    const JsonValue rv = parseJson(roundTrip(conn.fd, rq.str()));
    requireOk(rv, "result");

    const auto &arr = rv.at("outcomes").asArray();
    if (arr.size() != grid.size())
        SPT_FATAL("sweep service returned " << arr.size()
                  << " outcomes for " << grid.size() << " jobs");
    std::vector<RunOutcome> outcomes(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        outcomes[i] = ResultCache::decodeOutcome(
            hexDecode(arr[i].at("o").asString()));
        outcomes[i].memoized = arr[i].getBool("memoized", false);
        outcomes[i].job_desc = describeRunJob(grid[i]);
    }

    if (stats != nullptr) {
        const JsonValue &s = rv.at("stats");
        *stats = SweepStats{};
        stats->workers =
            static_cast<unsigned>(s.getU64("workers", 1));
        stats->unique_jobs = s.getU64("unique_jobs", 0);
        stats->memo_hits = s.getU64("memo_hits", 0);
        stats->failed_jobs = s.getU64("failed_jobs", 0);
        stats->first_failure = s.getString("first_failure", "");
        stats->wall_seconds = s.at("wall_seconds").asDouble();
        stats->cache_mode = s.getString("cache_mode", "off");
        stats->cache_dir = s.getString("cache_dir", "");
        const JsonValue &c = s.at("cache");
        stats->cache.hits = c.getU64("hits", 0);
        stats->cache.misses = c.getU64("misses", 0);
        stats->cache.verify_mismatches =
            c.getU64("verify_mismatches", 0);
        stats->cache.bytes_written = c.getU64("bytes_written", 0);
        stats->cache.host_seconds_saved =
            c.at("host_seconds_saved").asDouble();
        stats->via_service = true;
    }

    elog.emit(EventLevel::kInfo, "client", "batch-fetched",
              EventFields()
                  .num("batch", batch)
                  .num("jobs", static_cast<uint64_t>(grid.size())),
              client_span, policy.parent_span);

    // The daemon always runs keep_going (one bad job must not kill
    // it); re-impose fail-fast here. In-process runs rethrow the
    // original exception type — across the wire only the text
    // survives, so this becomes a FatalError carrying it.
    if (!policy.keep_going)
        for (const RunOutcome &out : outcomes)
            if (out.status == RunStatus::kCrash)
                SPT_FATAL("job " << out.job_desc
                          << " failed via sweep service: "
                          << out.error);
    return outcomes;
}

} // namespace spt
