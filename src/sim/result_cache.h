/**
 * @file
 * On-disk content-addressed result cache: cross-process memoization
 * of RunJob outcomes (the first layer of sweep-as-a-service,
 * DESIGN.md §14).
 *
 * The in-process memoization of sim/exp_runner.h keys jobs by
 * object identity (program/map pointers) and dies with the process;
 * this cache keys them by *content*. `canonicalKey` serializes the
 * full job descriptor into a stable text form in which every
 * by-reference component is replaced by a content hash — the
 * program fingerprint (KnowledgeMap::fingerprintOf: instruction
 * stream, entry, data segments, secret ranges), the knowledge-map
 * content hash, and a hash of the checkpoint snapshot bytes — plus
 * every scalar field of the descriptor (engine configuration,
 * attack model, seed, cycle budget, fault plan, observability
 * flags). Two jobs with equal canonical keys are the same pure
 * function: the simulator is deterministic and byte-identical at
 * any worker count, so serving a hit from disk is provably exact,
 * not approximate. `verify` mode makes that claim testable by
 * re-simulating hits and comparing the deterministic portion of
 * the outcome byte-for-byte.
 *
 * Record format ("SPTRES01", following the SPTKMAP1/snapshot codec
 * conventions): versioned, explicit little-endian, bounds-checked,
 * with the full canonical key embedded (64-bit filename hashes can
 * collide; the key comparison cannot) and an FNV-1a content-hash
 * trailer. A record that is truncated, bit-rotten, version-skewed,
 * or belongs to a colliding key decodes to "miss" — a corrupt
 * cache degrades to simulation, it never poisons a sweep or kills
 * it.
 *
 * Only `RunStatus::kOk` outcomes are stored: failure slots
 * re-simulate so default-policy sweeps still rethrow the original
 * exception, and a transiently broken build can't freeze its
 * failures into the cache. Jobs with a wall-clock timeout are not
 * cacheable at all (their outcome is schedule-dependent by
 * contract).
 *
 * Writes are atomic (temp file + rename), so concurrent writers —
 * pool workers, or several processes sharing one cache directory —
 * race benignly: both produce the same bytes for the same key.
 */

#ifndef SPT_SIM_RESULT_CACHE_H
#define SPT_SIM_RESULT_CACHE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace spt {

struct RunJob;
struct RunOutcome;

/** How a sweep uses the cache (RunnerPolicy::cache_mode /
 *  SPT_CACHE_MODE). */
enum class CacheMode : uint8_t {
    kOff,       ///< no cache I/O at all
    kReadWrite, ///< serve hits, store misses (the default)
    kReadOnly,  ///< serve hits, never write
    kVerify,    ///< re-simulate hits and compare byte-for-byte
};

const char *cacheModeName(CacheMode m);
/** Parses "off" / "read_write" / "read_only" / "verify";
 *  SPT_FATAL on anything else. */
CacheMode parseCacheMode(const std::string &text);

/** Cache traffic of one sweep (SweepStats::cache). */
struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /** verify-mode hits whose re-simulation did not reproduce the
     *  stored record byte-for-byte. Always 0 unless the cache was
     *  corrupted or the simulator's determinism contract broke —
     *  either way a finding, surfaced loudly. */
    uint64_t verify_mismatches = 0;
    uint64_t bytes_written = 0;
    /** Sum of the recorded host_seconds of every served hit: the
     *  simulation time this sweep did not pay. */
    double host_seconds_saved = 0.0;
};

class ResultCache
{
  public:
    /** Opens (creating if needed) cache directory @p dir.
     *  SPT_FATAL if the directory cannot be created. @p mode must
     *  not be kOff (callers skip construction entirely). */
    ResultCache(std::string dir, CacheMode mode);

    CacheMode mode() const { return mode_; }
    const std::string &dir() const { return dir_; }

    /** False for jobs whose outcome is not a pure function of the
     *  descriptor (nonzero wall_timeout_seconds). */
    static bool cacheable(const RunJob &job);

    /** Stable content-addressed serialization of the descriptor;
     *  "" when the job is uncacheable (including an unreadable
     *  checkpoint file — the simulation itself will report that).
     *  @p ckpt_hashes, when given, memoizes checkpoint-file hashes
     *  across the calls of one grid so a fork-from-snapshot sweep
     *  reads the snapshot once, not once per cell. */
    static std::string
    canonicalKey(const RunJob &job,
                 std::map<std::string, uint64_t> *ckpt_hashes =
                     nullptr);

    /** Deterministic wire encoding of an outcome — the record
     *  payload, also reused verbatim by the sweep-service protocol.
     *  job_desc/memoized are per-slot runner state and excluded. */
    static std::string encodeOutcome(const RunOutcome &out);
    /** Inverse of encodeOutcome; SPT_FATAL on malformed bytes. */
    static RunOutcome decodeOutcome(const std::string &bytes);
    /** encodeOutcome with host_seconds — the only
     *  schedule-dependent field — zeroed: the byte-equality domain
     *  of verify mode and the determinism tests. */
    static std::string
    encodeOutcomeDeterministic(const RunOutcome &out);

    /** Entry file path for @p key (exposed for tests that corrupt
     *  or poison entries deliberately). */
    std::string entryPath(const std::string &key) const;

    /** Looks @p key up; on a hit fills @p out and returns true.
     *  Every decode failure (missing file, truncation, bit-rot,
     *  version skew, filename-hash collision) is a miss. Counts
     *  hits/misses/host_seconds_saved; thread-safe. */
    bool lookup(const std::string &key, RunOutcome *out);

    /** Stores @p out under @p key (kReadWrite only; kOk outcomes
     *  only — anything else is silently skipped). Atomic via temp
     *  file + rename; an unwritable cache directory warns once
     *  rather than failing the sweep. Thread-safe. */
    void store(const std::string &key, const RunOutcome &out);

    /** Records a verify-mode byte mismatch for @p key (also warns
     *  on stderr). Thread-safe. */
    void noteVerifyMismatch(const std::string &key);

    CacheStats stats() const;

  private:
    std::string dir_;
    CacheMode mode_;
    mutable std::mutex mutex_;
    CacheStats stats_;
    uint64_t tmp_seq_ = 0; ///< unique temp-file suffix per store
    bool write_failed_ = false; ///< warn once, then stay quiet
};

} // namespace spt

#endif // SPT_SIM_RESULT_CACHE_H
