/**
 * @file
 * Crash-safe batch journal: the durability layer under
 * sweep-as-a-service (sim/sweep_service.h, DESIGN.md §16).
 *
 * Without it, `kill -9` of spt_sweepd loses every in-flight slot
 * and every submitted-but-unfetched batch. With `--journal DIR`
 * the daemon appends one record per state transition —
 *
 *   SUBMIT    batch id + client token + the submit request verbatim
 *             (the request already carries program/map content in
 *             their SPTPRRG1/SPTKMAP1 wire forms and every job
 *             scalar, so replaying it reconstructs the exact grid)
 *   SLOTDONE  batch id + slot index + the slot's SPTRES01 outcome
 *             payload (ResultCache::encodeOutcome bytes)
 *   BATCHDONE batch id + sweep stats (or the batch-level error)
 *   RELEASED  batch id (result fetched; the batch may be dropped)
 *   CUT       SIGTERM drain point: the in-flight batch id and the
 *             queue it left behind
 *   RECOVERED replay summary stamped at the next startup
 *
 * — to a single append-only segment ("SPTJRNL1"). Every record is
 * length-prefixed and FNV-1a-trailered following the result-cache
 * record conventions; `recover()` replays records until the first
 * truncated or bit-rotten one and drops the tail, so the worst a
 * torn write costs is a clean re-run of the slots whose records
 * were lost — never a wrong result. Slot outcomes are pure
 * functions of their descriptors (exp_runner.h determinism
 * contract), which is what makes "re-enqueue the incomplete
 * subgrid" byte-identical to never having crashed, in the same
 * deterministic domain the cache-verify gate pins (everything but
 * host_seconds).
 *
 * The journal keeps an in-memory mirror of every unreleased batch,
 * so compaction (`rotate()`) can rewrite the segment from live
 * state alone: the rewrite goes to a temp file and renames over
 * the segment, the same atomicity discipline as result-cache
 * stores. Rotation happens at the end of every recovery (dropping
 * released/corrupt garbage) and whenever dead bytes dominate the
 * segment.
 *
 * Thread safety: every method takes an internal mutex — appends
 * arrive from connection threads (SUBMIT/RELEASED), pool workers
 * (SLOTDONE via RunnerPolicy::on_slot_complete) and the executor
 * (BATCHDONE) concurrently. Each append is flushed to the OS
 * before the mutex drops: surviving `kill -9` needs the write() to
 * have happened, not the stdio buffer.
 */

#ifndef SPT_SIM_BATCH_JOURNAL_H
#define SPT_SIM_BATCH_JOURNAL_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/exp_runner.h"

namespace spt {

class BatchJournal
{
  public:
    /** One unreleased batch as reconstructed by replay (and
     *  mirrored live for compaction). */
    struct BatchRecord {
        uint64_t id = 0;
        std::string token;        ///< client resubmission token
        std::string request_json; ///< the submit request, verbatim
        /** slot index -> SPTRES01 payload of the completed slot. */
        std::map<uint64_t, std::string> slot_payloads;
        /** slot index -> served-by-memo flag (not part of the
         *  outcome payload; per-slot runner state). */
        std::map<uint64_t, bool> slot_memoized;
        bool done = false;
        SweepStats stats;  ///< valid when done && error.empty()
        std::string error; ///< batch-level failure when done
    };

    /** What replay found. */
    struct Recovery {
        /** Unreleased batches in submission (id) order. */
        std::vector<BatchRecord> batches;
        uint64_t next_batch = 1; ///< first unused batch id
        uint64_t records = 0;    ///< well-formed records replayed
        /** Bytes dropped behind the first torn/corrupt record; 0 on
         *  a clean shutdown. */
        uint64_t dropped_bytes = 0;
        /** Unix time of this recovery (stamped into the segment so
         *  the health op can report it). */
        uint64_t recovered_at = 0;
    };

    /** Opens (creating if needed) journal directory @p dir, replays
     *  the existing segment, compacts it, and arms appending.
     *  SPT_FATAL if the directory or segment cannot be created. */
    explicit BatchJournal(std::string dir);
    ~BatchJournal();

    BatchJournal(const BatchJournal &) = delete;
    BatchJournal &operator=(const BatchJournal &) = delete;

    /** Replay result of the segment found at construction. */
    const Recovery &recovery() const { return recovery_; }

    const std::string &dir() const { return dir_; }
    std::string segmentPath() const;

    // --- appends (all thread-safe, all flushed) -------------------
    void submit(uint64_t id, const std::string &token,
                const std::string &request_json);
    void slotDone(uint64_t id, uint64_t slot,
                  const std::string &payload, bool memoized);
    void batchDone(uint64_t id, const SweepStats &stats,
                   const std::string &error);
    void released(uint64_t id);
    /** SIGTERM drain point: @p inflight is the batch the executor
     *  was running (0 if idle), @p queued the ids left queued. */
    void cut(uint64_t inflight, const std::vector<uint64_t> &queued);

    /** Rewrites the segment from the live mirror (temp + rename),
     *  dropping released batches and any corrupt tail. Called
     *  internally; exposed for tests. */
    void rotate();

    // --- health ---------------------------------------------------
    /** Current segment size in bytes. */
    uint64_t bytes() const;
    /** Unreleased batches mirrored (live + replayed). */
    uint64_t liveBatches() const;
    /** Mirrored batches not yet done (queued or mid-run). */
    uint64_t incompleteBatches() const;
    /** Appends that failed (disk full …); the daemon keeps serving
     *  but durability is gone — surfaced via the health op. */
    uint64_t writeFailures() const;

  private:
    void append(uint8_t type, const std::string &payload);
    void openSegment(const char *mode);

    std::string dir_;
    Recovery recovery_;
    mutable std::mutex mutex_;
    /** Highest batch id ever journaled: persisted as a next-batch
     *  hint in the RECOVERED marker so compaction (which drops
     *  released batches' SUBMIT records) can never make a restarted
     *  daemon reissue an id a client has already seen. */
    uint64_t max_id_ = 0;
    std::FILE *seg_ = nullptr;
    uint64_t seg_bytes_ = 0;
    uint64_t dead_bytes_ = 0; ///< bytes belonging to released batches
    uint64_t write_failures_ = 0;
    std::map<uint64_t, BatchRecord> live_;
};

} // namespace spt

#endif // SPT_SIM_BATCH_JOURNAL_H
