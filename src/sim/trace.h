/**
 * @file
 * Taint-lifecycle tracing: a PipelineObserver that records every
 * pipeline and SPT taint event of a run, emitted in two forms:
 *
 *  - a human-readable text stream, one event per line:
 *      <cycle> <event> seq=<seq> pc=<pc> [k=v ...]
 *    with events fetch/rename/issue/exec/memaccess/vp/retire/squash
 *    (pipeline lifecycle), taint/untaint (taint lifecycle, with the
 *    untaint rule id and operand slot), and delay-start/delay-end
 *    (policy-gate intervals with kind, cause, and length);
 *
 *  - a gem5-O3PipeView-compatible pipeline trace (the format Konata
 *    visualizes), one record per instruction emitted when it leaves
 *    the pipeline, with byte PCs and cycle numbers as ticks.
 *
 * Determinism: both outputs are pure functions of the simulated
 * machine (no host time, no pointers), so traces of the same job are
 * byte-identical across runs and `--jobs` worker counts — pinned by
 * tests/test_observability.cpp.
 *
 * ObserverMux fans the Core's single observer slot out to any
 * combination of Tracer, DelayProfiler, and IntervalRecorder.
 */

#ifndef SPT_SIM_TRACE_H
#define SPT_SIM_TRACE_H

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "uarch/dyn_inst.h"
#include "uarch/pipeline_observer.h"

namespace spt {

class Tracer : public PipelineObserver
{
  public:
    /** Either stream may be null to skip that output form. Streams
     *  are borrowed and must outlive the tracer. */
    Tracer(std::ostream *text, std::ostream *pipeview);

    void fetch(uint64_t cycle, const DynInst &d) override;
    void rename(uint64_t cycle, const DynInst &d) override;
    void issue(uint64_t cycle, const DynInst &d) override;
    void executed(uint64_t cycle, const DynInst &d) override;
    void memAccess(uint64_t cycle, const DynInst &d) override;
    void reachedVp(uint64_t cycle, const DynInst &d) override;
    void retired(uint64_t cycle, const DynInst &d) override;
    void squashed(uint64_t cycle, const DynInst &d) override;
    void taintEvent(uint64_t cycle, TaintEvent ev, const DynInst &d,
                    uint8_t slot) override;
    void delayCycle(uint64_t cycle, const DynInst &d, DelayKind kind,
                    DelayCause cause) override;
    void gateOpened(uint64_t cycle, const DynInst &d,
                    DelayKind kind) override;

    /** Flushes pipeline-trace records of instructions still in
     *  flight when the run ended (emitted as never-retired, in seq
     *  order) and closes open delay intervals in the text trace.
     *  Call once, after Core::run returns. */
    void finish(uint64_t final_cycle);

  private:
    /** O3PipeView stage timestamps of one in-flight instruction
     *  (0 = stage not reached, gem5's convention). */
    struct PipeRec {
        uint64_t fetch = 0;
        uint64_t rename = 0;
        uint64_t issue = 0;
        uint64_t complete = 0;
        uint64_t pc = 0;      ///< instruction index (not bytes)
        std::string disasm;
        bool is_store = false;
    };
    /** An open policy-gate interval (delay-start seen, no end). */
    struct OpenDelay {
        uint64_t start_cycle = 0;
        uint64_t cycles = 0;
        DelayKind kind = DelayKind::kMemAccess;
        bool open = false;
    };

    std::ostream *text_;
    std::ostream *pipeview_;
    /** Keyed by seq; ordered so the finish() flush is deterministic. */
    std::map<SeqNum, PipeRec> pipe_;
    std::map<SeqNum, OpenDelay> delays_;

    void event(uint64_t cycle, const char *name, const DynInst &d);
    void emitPipeRecord(SeqNum seq, const PipeRec &rec,
                        uint64_t retire_cycle);
    void endDelay(uint64_t cycle, const DynInst &d, bool squash);
};

/**
 * Validates a text trace produced by Tracer: per seq, event cycles
 * must be non-decreasing, fetch must be the first event, nothing may
 * follow retire/squash, and every delay-start must be matched by a
 * delay-end or a squash. Returns true if clean; otherwise false with
 * a diagnostic (line number + reason) in @p error.
 */
bool validateTraceText(std::istream &in, std::string *error);

/** Fans one observer slot out to several observers (call order =
 *  registration order). */
class ObserverMux : public PipelineObserver
{
  public:
    void add(PipelineObserver *obs) { sinks_.push_back(obs); }
    bool empty() const { return sinks_.empty(); }

    void
    fetch(uint64_t c, const DynInst &d) override
    {
        for (PipelineObserver *o : sinks_)
            o->fetch(c, d);
    }
    void
    rename(uint64_t c, const DynInst &d) override
    {
        for (PipelineObserver *o : sinks_)
            o->rename(c, d);
    }
    void
    issue(uint64_t c, const DynInst &d) override
    {
        for (PipelineObserver *o : sinks_)
            o->issue(c, d);
    }
    void
    executed(uint64_t c, const DynInst &d) override
    {
        for (PipelineObserver *o : sinks_)
            o->executed(c, d);
    }
    void
    memAccess(uint64_t c, const DynInst &d) override
    {
        for (PipelineObserver *o : sinks_)
            o->memAccess(c, d);
    }
    void
    reachedVp(uint64_t c, const DynInst &d) override
    {
        for (PipelineObserver *o : sinks_)
            o->reachedVp(c, d);
    }
    void
    retired(uint64_t c, const DynInst &d) override
    {
        for (PipelineObserver *o : sinks_)
            o->retired(c, d);
    }
    void
    squashed(uint64_t c, const DynInst &d) override
    {
        for (PipelineObserver *o : sinks_)
            o->squashed(c, d);
    }
    void
    taintEvent(uint64_t c, TaintEvent ev, const DynInst &d,
               uint8_t slot) override
    {
        for (PipelineObserver *o : sinks_)
            o->taintEvent(c, ev, d, slot);
    }
    void
    delayCycle(uint64_t c, const DynInst &d, DelayKind k,
               DelayCause cause) override
    {
        for (PipelineObserver *o : sinks_)
            o->delayCycle(c, d, k, cause);
    }
    void
    gateOpened(uint64_t c, const DynInst &d, DelayKind k) override
    {
        for (PipelineObserver *o : sinks_)
            o->gateOpened(c, d, k);
    }
    void
    cycleEnd(uint64_t c) override
    {
        for (PipelineObserver *o : sinks_)
            o->cycleEnd(c);
    }

  private:
    std::vector<PipelineObserver *> sinks_;
};

} // namespace spt

#endif // SPT_SIM_TRACE_H
