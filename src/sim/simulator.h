/**
 * @file
 * Top-level simulation driver: builds a Core from a SimConfig, runs
 * a program to completion, optionally lockstep-checks every commit
 * against the functional reference CPU, and gathers all statistics
 * (the equivalent of gem5's stats.txt).
 *
 * Threading contract (relied on by sim/exp_runner.h): one Simulator
 * per thread, no shared mutable state. A Simulator owns its entire
 * machine (core, memory system, engine, reference CPU) and only
 * reads the Program it was given; concurrent Simulators over the
 * same const Program are race-free. The only process-global state
 * reachable from run() is the logging verbose flag (atomic, see
 * logging.h) and the lazily-built workload registries (immutable
 * after magic-static initialization). Audited for PR 3; keep new
 * code free of mutable statics on the run() path.
 */

#ifndef SPT_SIM_SIMULATOR_H
#define SPT_SIM_SIMULATOR_H

#include <memory>
#include <ostream>
#include <string>

#include "isa/functional_cpu.h"
#include "sim/profile.h"
#include "sim/sim_config.h"
#include "sim/trace.h"

namespace spt {

class JsonWriter;
class InvariantChecker;

/** Why run() returned. */
enum class Termination : uint8_t {
    kHalted,      ///< the program's HALT committed
    kMaxCycles,   ///< the cycle budget elapsed
    kLivelock,    ///< retire-progress watchdog tripped
    kWallTimeout, ///< host wall-clock cap tripped
};

const char *terminationName(Termination t);

struct SimResult {
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    bool halted = false;
    double ipc = 0.0;
    Termination termination = Termination::kMaxCycles;
};

class Simulator
{
  public:
    Simulator(const Program &program, const SimConfig &config);
    ~Simulator();

    /** Runs until HALT (or max_cycles); may be called once. When
     *  config.checkpoint_at_retires is nonzero and no snapshot was
     *  restored, the run passes through the drain barrier at that
     *  retire count (and serializes a snapshot there if
     *  writeSnapshotTo was armed). */
    SimResult run();

    /**
     * Arms snapshot serialization: when run() reaches the
     * checkpoint_at_retires drain barrier, the full simulator state
     * is written to @p os (sim/snapshot.h). Must be called before
     * run(); the stream must outlive it. Requires
     * config.checkpoint_at_retires != 0.
     */
    void writeSnapshotTo(std::ostream *os);

    /**
     * Restores a snapshot into this freshly constructed simulator;
     * must precede run(), which then resumes from the checkpoint
     * instead of passing through the barrier. The configuration must
     * be snapshot-compatible (see Snapshotter::restore); lockstep
     * checking is unsupported across a restore.
     */
    void restoreSnapshot(std::istream &is);

    /** Whether run() will resume from a restored snapshot. */
    bool restored() const { return restored_; }

    /**
     * Streams the taint-lifecycle trace of the run into @p text
     * (human-readable events) and/or @p pipeview (gem5-O3PipeView
     * form, Konata-compatible); either may be null. Must be called
     * before run(); the streams must outlive it.
     */
    void enableTrace(std::ostream *text, std::ostream *pipeview);

    /** Arms the telemetry heartbeat (forwarded to Core): @p hook
     *  fires with (cycles, instructions) roughly every
     *  @p interval_cycles simulated cycles during run(). Read-only
     *  telemetry — does not disable fast-forward and cannot perturb
     *  results (DESIGN.md §15). Call before run(). */
    void setHeartbeat(uint64_t interval_cycles,
                      Core::HeartbeatHook hook)
    {
        core_->setHeartbeat(interval_cycles, std::move(hook));
    }

    /** Non-null after run() iff config.faults has a nonzero rate. */
    const FaultInjector *faults() const { return injector_.get(); }
    /** Non-null after run() iff config.invariants was set. */
    const InvariantChecker *invariants() const
    {
        return checker_.get();
    }
    /** Structured DiagnosticReports as a JSON array: the checker's
     *  reports when one is attached, a synthesized livelock report
     *  when the core watchdog tripped without one, else "[]". */
    std::string diagnosticsJson() const;

    /** Non-null after run() iff config.profile was set. */
    const DelayProfiler *profiler() const { return profiler_.get(); }
    /** Non-null after run() iff config.interval_stats > 0. */
    const IntervalRecorder *intervals() const
    {
        return intervals_.get();
    }

    Core &core() { return *core_; }
    const SimConfig &config() const { return config_; }

    /** Dumps every component's statistics ("stats.txt"). */
    void dumpStats(std::ostream &os) const;

    /** The same statistics as one JSON document ("stats.json"),
     *  reusing StatSet::dumpJson — no second serializer. */
    void dumpStatsJson(JsonWriter &jw) const;

    /** Counter lookup across components, e.g. "core.cycles",
     *  "engine.untaint.forward", "mem.l1_hits". */
    uint64_t stat(const std::string &name) const;

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    const Program &program_;
    SimConfig config_;
    std::unique_ptr<Core> core_;
    std::unique_ptr<FunctionalCpu> reference_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<DelayProfiler> profiler_;
    std::unique_ptr<IntervalRecorder> intervals_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<InvariantChecker> checker_;
    ObserverMux observers_;
    std::ostream *snapshot_out_ = nullptr;
    bool ran_ = false;
    bool restored_ = false;
    bool livelocked_ = false;
};

/** Convenience: run @p program under @p engine_cfg / @p model and
 *  return the result (used by benches and examples). */
SimResult runProgram(const Program &program,
                     const EngineConfig &engine_cfg,
                     AttackModel model,
                     uint64_t max_cycles = 500'000'000);

} // namespace spt

#endif // SPT_SIM_SIMULATOR_H
