/**
 * @file
 * The in-flight dynamic instruction record shared by ROB, reservation
 * station, and LSQ.
 */

#ifndef SPT_UARCH_DYN_INST_H
#define SPT_UARCH_DYN_INST_H

#include <memory>

#include "bp/bpu.h"
#include "isa/instruction.h"
#include "isa/semantics.h"
#include "uarch/types.h"

namespace spt {

struct DynInst {
    // --- identity ---------------------------------------------------
    SeqNum seq = 0;
    uint64_t pc = 0;
    Instruction si;

    // --- static classification (cached from traits) ------------------
    bool is_load = false;
    bool is_store = false;
    bool is_ctrl = false;         ///< any control flow
    bool is_squash_source = false;///< cond branch or JALR (can mispredict)
    bool has_dest = false;        ///< writes a (non-x0) register
    uint8_t num_srcs = 0;
    unsigned mem_bytes = 0;

    // --- rename ------------------------------------------------------
    PhysReg prd = kNoPhysReg;
    PhysReg prs1 = kNoPhysReg;
    PhysReg prs2 = kNoPhysReg;
    PhysReg prev_prd = kNoPhysReg;

    // --- pipeline status ----------------------------------------------
    bool issued = false;     ///< left the RS
    bool executed = false;   ///< result/outcome computed
    bool completed = false;  ///< commit-eligible
    bool squashed = false;

    // --- control flow -------------------------------------------------
    bool predicted_taken = false;
    uint64_t pred_next_pc = 0;
    uint64_t actual_next_pc = 0;
    bool mispredicted = false;
    /** Resolution effects (redirect + squash) computed but deferred
     *  until the security policy allows them (implicit-channel rule). */
    bool squash_pending = false;
    bool has_checkpoint = false;
    BranchPredictorUnit::Checkpoint checkpoint;

    // --- memory --------------------------------------------------------
    bool addr_known = false;   ///< virtual effective address computed
    uint64_t eff_addr = 0;
    uint64_t store_data = 0;   ///< store: data operand value
    bool access_done = false;  ///< memory access performed/forwarded
    bool forwarded = false;    ///< load: value came via STL forwarding
    SeqNum forwarding_store = 0;
    /** Load issued to memory while older store addresses were still
     *  unknown (memory-dependence speculation). */
    bool speculated_past_store = false;
    /** A store discovered this load read stale data; squash deferred
     *  until the policy allows it. */
    bool mem_violation_pending = false;
    /** pc of the store that flagged the violation (for store-set
     *  training when the squash is performed). */
    uint64_t violating_store_pc = 0;
    /** Store-set predicted dependence: wait until this store's
     *  address is known (0 = none). */
    SeqNum wait_store_seq = 0;

    // --- execution ------------------------------------------------------
    ExecResult exec;
    uint64_t result = 0; ///< final dest value (after finishLoad)

    // --- security ---------------------------------------------------------
    /** Reached the visibility point (monotone until squash). */
    bool at_vp = false;
    /** Slot of this instruction's taint record in the security
     *  engine's ROB-parallel taint storage; assigned at rename,
     *  kNoTaintIdx while not renamed (or under engines that keep no
     *  per-instruction state). */
    uint32_t taint_idx = kNoTaintIdx;

    bool isMem() const { return is_load || is_store; }
};

using DynInstPtr = std::shared_ptr<DynInst>;

} // namespace spt

#endif // SPT_UARCH_DYN_INST_H
