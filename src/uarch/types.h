/**
 * @file
 * Basic types shared across the out-of-order core.
 */

#ifndef SPT_UARCH_TYPES_H
#define SPT_UARCH_TYPES_H

#include <cstdint>
#include <limits>

namespace spt {

/** Monotonically increasing dynamic-instruction id. */
using SeqNum = uint64_t;

/** Physical register identifier. */
using PhysReg = uint16_t;

constexpr PhysReg kNoPhysReg = std::numeric_limits<PhysReg>::max();

/** "No taint-storage slot assigned" sentinel for DynInst::taint_idx. */
constexpr uint32_t kNoTaintIdx = std::numeric_limits<uint32_t>::max();

/**
 * Attack models from the paper (Section 2.2.1): they define the
 * visibility point (VP), the moment an instruction is considered
 * non-speculative.
 *
 * - kSpectre: covers control-flow speculation. An instruction
 *   reaches the VP once all older control-flow instructions have
 *   resolved (and, in this implementation, once all older store
 *   addresses are known — the data-speculation-augmented variant of
 *   the model that Section 8 of the paper describes, which keeps the
 *   VP sound in the presence of memory-dependence speculation).
 * - kFuturistic: covers all speculation. An instruction reaches the
 *   VP once it can no longer be squashed, i.e., all older
 *   instructions have completed without a pending squash.
 */
enum class AttackModel : uint8_t {
    kSpectre,
    kFuturistic,
};

/** Protection schemes of Table 2. */
enum class ProtectionScheme : uint8_t {
    kUnsafeBaseline,
    kSecureBaseline,
    kStt,
    kSpt,
};

/** SPT untaint-propagation capability levels (Table 2). */
enum class UntaintMethod : uint8_t {
    kNone,     ///< no untainting => SecureBaseline behavior
    kForward,  ///< forward rules only
    kBackward, ///< forward + backward rules
    kIdeal,    ///< single-cycle transitive closure, unbounded width
};

/** Memory taint-tracking scope (Table 2). */
enum class ShadowKind : uint8_t {
    kNone,      ///< memory data always tainted
    kShadowL1,  ///< byte-granular taint for L1D-resident lines
    kShadowMem, ///< idealized byte-granular taint for all memory
};

} // namespace spt

#endif // SPT_UARCH_TYPES_H
