/**
 * @file
 * Load/store unit logic of the Core: policy-gated memory accesses,
 * store-to-load forwarding over virtual addresses, memory-dependence
 * speculation, and violation detection.
 */

#include "common/logging.h"
#include "uarch/core.h"

namespace spt {

namespace {

bool
rangesOverlap(uint64_t a, unsigned an, uint64_t b, unsigned bn)
{
    return a < b + bn && b < a + an;
}

bool
rangeCovers(uint64_t outer, unsigned outer_n, uint64_t inner,
            unsigned inner_n)
{
    return outer <= inner && inner + inner_n <= outer + outer_n;
}

} // namespace

void
Core::memStage()
{
    // Stores: the policy-gated "execution" step (address translation
    // and everything the paper counts as the store's transmit).
    unsigned store_ports = params_.store_ports;
    for (const DynInstPtr &st : sq_) {
        if (store_ports == 0)
            break;
        if (!st->addr_known || st->completed || st->squashed)
            continue;
        if (!engine_->mayAccessMemory(*st)) {
            noteTransmitterDelay(*st, DelayKind::kMemAccess);
            stats_.inc("lsu.store_policy_delays");
            break; // stores translate in order
        }
        st->access_done = true;
        st->completed = true;
        --store_ports;
        stats_.inc("lsu.store_translations");
        if (observer_) {
            observer_->gateOpened(cycle_, *st, DelayKind::kMemAccess);
            observer_->memAccess(cycle_, *st);
        }
    }

    // Loads, oldest first.
    unsigned load_ports = params_.load_ports;
    for (const DynInstPtr &ld : lq_) {
        if (load_ports == 0)
            break;
        if (!ld->addr_known || ld->access_done || ld->squashed ||
            ld->mem_violation_pending)
            continue;
        if (!engine_->mayAccessMemory(*ld)) {
            noteTransmitterDelay(*ld, DelayKind::kMemAccess);
            stats_.inc("lsu.load_policy_delay_cycles");
            continue;
        }
        if (tryLoadAccess(ld))
            --load_ports;
    }
}

/**
 * Attempts to start the memory access / forwarding of @p ld.
 * Returns true if the access was started (consumes a port).
 */
bool
Core::tryLoadAccess(const DynInstPtr &ld)
{
    // Scan older stores, youngest first, over *virtual* addresses
    // (which the LSQ knows even for stores whose policy-gated
    // execution has not happened yet — Section 6.7).
    DynInstPtr fwd;
    bool unknown_addr_seen = false;
    for (auto it = sq_.rbegin(); it != sq_.rend(); ++it) {
        const DynInstPtr &st = *it;
        if (st->seq > ld->seq || st->squashed)
            continue;
        if (!st->addr_known) {
            if (!params_.mem_dep_speculation) {
                stats_.inc("lsu.load_dep_stall_cycles");
                return false;
            }
            if (ld->wait_store_seq != 0 &&
                st->seq == ld->wait_store_seq) {
                // Store-set predicted dependence: wait for it.
                stats_.inc("lsu.store_set_stall_cycles");
                return false;
            }
            unknown_addr_seen = true;
            continue;
        }
        if (!rangesOverlap(st->eff_addr, st->mem_bytes, ld->eff_addr,
                           ld->mem_bytes))
            continue;
        if (rangeCovers(st->eff_addr, st->mem_bytes, ld->eff_addr,
                        ld->mem_bytes)) {
            fwd = st;
            break;
        }
        // Partial overlap: wait until the store drains to memory.
        stats_.inc("lsu.partial_overlap_stall_cycles");
        return false;
    }

    unsigned latency;
    if (fwd) {
        ld->forwarded = true;
        ld->forwarding_store = fwd->seq;
        bool fast_path = engine_->stlForwardingPublic(*ld, *fwd);
        if (fast_path && faults_ &&
            faults_->fire(FaultSite::kStlDeny)) {
            // Deny the forwarding fast path: take the hidden
            // cache-access route below even though STLPublic holds.
            // The data is still forwarded from the store — only the
            // latency (and cache state) changes.
            fast_path = false;
            stats_.inc("fault.stl_denials");
        }
        if (fast_path) {
            // Ordinary forwarding fast path, no cache access.
            latency = memsys_.l1d().params().latency;
            stats_.inc("lsu.forwards_public");
        } else {
            // Hide the forwarding decision: access the cache anyway
            // and ignore the returned data (Section 6.7).
            const MemAccessResult res = memsys_.access(
                ld->eff_addr, AccessKind::kLoad, cycle_);
            if (!res.accepted) {
                stats_.inc("lsu.mshr_retries");
                ld->forwarded = false;
                ld->forwarding_store = 0;
                return false;
            }
            latency = res.latency;
            stats_.inc("lsu.forwards_hidden");
        }
    } else {
        const MemAccessResult res =
            memsys_.access(ld->eff_addr, AccessKind::kLoad, cycle_);
        if (!res.accepted) {
            stats_.inc("lsu.mshr_retries");
            return false;
        }
        latency = res.latency;
        if (unknown_addr_seen)
            ld->speculated_past_store = true;
        stats_.inc("lsu.load_accesses");
    }

    ld->access_done = true;
    if (observer_) {
        observer_->gateOpened(cycle_, *ld, DelayKind::kMemAccess);
        observer_->memAccess(cycle_, *ld);
    }
    completion_events_.emplace(cycle_ + latency, ld);
    return true;
}

void
Core::completeLoadData(const DynInstPtr &ld)
{
    uint64_t raw;
    if (ld->forwarded) {
        const DynInstPtr st = findInst(ld->forwarding_store);
        if (st) {
            raw = st->store_data >>
                  (8 * (ld->eff_addr - st->eff_addr));
        } else {
            // The forwarding store retired while the load was in
            // flight; its data is in memory now.
            raw = mem_.read(ld->eff_addr, ld->mem_bytes);
        }
    } else {
        raw = mem_.read(ld->eff_addr, ld->mem_bytes);
    }
    ld->result = finishLoad(ld->si.op, raw);

    engine_->onLoadData(*ld, ld->forwarded, ld->forwarding_store);

    prf_.write(ld->prd, ld->result);
    ld->executed = true;
    ld->completed = true;
    if (observer_)
        observer_->executed(cycle_, *ld);
}

/**
 * A store's virtual address just became known: flag younger loads
 * that already obtained data from a stale source.
 */
void
Core::checkViolationsFromStore(const DynInstPtr &st)
{
    for (const DynInstPtr &ld : lq_) {
        if (ld->seq < st->seq || ld->squashed || !ld->access_done)
            continue;
        if (ld->mem_violation_pending)
            continue;
        if (!rangesOverlap(st->eff_addr, st->mem_bytes, ld->eff_addr,
                           ld->mem_bytes))
            continue;
        // The load got its data from memory or from a store older
        // than st; either way it missed st's data.
        if (ld->forwarded && ld->forwarding_store > st->seq)
            continue;
        ld->mem_violation_pending = true;
        ld->violating_store_pc = st->pc;
        stats_.inc("lsu.violations_detected");
    }
}

} // namespace spt
