/**
 * @file
 * Physical register file with ready bits and a free list.
 */

#ifndef SPT_UARCH_PHYS_REG_FILE_H
#define SPT_UARCH_PHYS_REG_FILE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "isa/instruction.h"
#include "uarch/types.h"

namespace spt {

class PhysRegFile
{
  public:
    /** Register 0 is reserved as the always-zero, always-ready
     *  register that architectural x0 maps to. */
    static constexpr PhysReg kZeroReg = 0;

    explicit PhysRegFile(unsigned num_regs);

    /** Allocates a free register (not ready); panics if exhausted —
     *  callers must check freeCount() first. */
    PhysReg allocate();

    void free(PhysReg reg);

    bool hasFree() const { return !free_list_.empty(); }
    size_t freeCount() const { return free_list_.size(); }
    unsigned numRegs() const
    {
        return static_cast<unsigned>(values_.size());
    }

    bool ready(PhysReg reg) const { return ready_[reg]; }
    uint64_t value(PhysReg reg) const { return values_[reg]; }

    void write(PhysReg reg, uint64_t value);

    /** Marks not-ready (fresh allocation). */
    void clearReady(PhysReg reg) { ready_[reg] = reg == kZeroReg; }

  private:
    std::vector<uint64_t> values_;
    std::vector<uint8_t> ready_;
    std::deque<PhysReg> free_list_;
};

} // namespace spt

#endif // SPT_UARCH_PHYS_REG_FILE_H
