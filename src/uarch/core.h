/**
 * @file
 * Cycle-level out-of-order core: 8-wide fetch/rename/issue/commit,
 * 192-entry ROB, unified reservation station, split 32/32 LQ/SQ with
 * store-to-load forwarding and store-set memory-dependence
 * speculation, LTAGE front end, and Table-1 memory hierarchy.
 *
 * Every security-relevant action is routed through the attached
 * SecurityEngine:
 *  - load/store memory accesses wait for mayAccessMemory(),
 *  - branch-resolution effects (redirect + squash) wait for
 *    mayResolveBranch(),
 *  - memory-order-violation squashes wait for
 *    maySquashMemViolation(),
 *  - predictor training happens only at commit.
 *
 * The ROB computes per-cycle visibility-point (VP) flags under the
 * configured attack model; engines build declassification on top.
 */

#ifndef SPT_UARCH_CORE_H
#define SPT_UARCH_CORE_H

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "bp/bpu.h"
#include "common/byte_memory.h"
#include "common/fault_hooks.h"
#include "common/stats.h"
#include "isa/program.h"
#include "mem/memory_system.h"
#include "uarch/dyn_inst.h"
#include "uarch/phys_reg_file.h"
#include "uarch/rename_map.h"
#include "uarch/security_engine.h"
#include "uarch/store_set.h"
#include "uarch/types.h"

namespace spt {

struct CoreParams {
    unsigned fetch_width = 8;
    unsigned rename_width = 8;
    unsigned issue_width = 8;
    unsigned commit_width = 8;
    unsigned rob_size = 192;
    unsigned rs_size = 64;
    unsigned lq_size = 32;
    unsigned sq_size = 32;
    unsigned num_phys_regs = 320;
    unsigned fetch_queue_size = 32;
    unsigned frontend_extra_delay = 3; ///< decode/rename pipe depth
    unsigned redirect_penalty = 2;
    unsigned load_ports = 2;  ///< loads starting a memory access/cycle
    unsigned store_ports = 1; ///< stores translating per cycle
    bool mem_dep_speculation = true;
    /** Ideal instruction fetch (no I-cache timing); useful for
     *  micro-tests that need deterministic backend timing. */
    bool perfect_icache = false;
    /** Skip provably dead cycles in run(): when every stage is
     *  blocked and the engine is quiescent, jump to the next timed
     *  event (completion, fetch wakeup, watchdog bound) and
     *  bulk-apply the per-cycle blocked-stat accruals. Stat- and
     *  result-identical to ticking each cycle (pinned by the
     *  fast-forward equivalence tests); auto-disabled while an
     *  observer or fault injector is attached or the engine refuses
     *  (fastForwardSafe). */
    bool fast_forward = false;
    AttackModel attack_model = AttackModel::kSpectre;
    /** Retire-progress watchdog: if no instruction commits within
     *  this many cycles, run() stops with RunResult::livelocked
     *  instead of spinning to max_cycles (0 disables). */
    uint64_t watchdog_cycles = 200'000;
};

class Core
{
  public:
    struct RunResult {
        uint64_t cycles = 0;
        uint64_t instructions = 0;
        bool halted = false;
        /** Retire watchdog tripped (see CoreParams::watchdog_cycles). */
        bool livelocked = false;
        /** Cooperative wall-clock limit tripped (see setWallTimeout). */
        bool wall_timeout = false;
    };

    using CommitHook = std::function<void(const DynInst &)>;

    /** Periodic progress callback from run(): (cycles so far,
     *  instructions retired so far). See setHeartbeat(). */
    using HeartbeatHook = std::function<void(uint64_t, uint64_t)>;

    /** The program is copied, so temporaries are safe. */
    Core(Program program, const CoreParams &params,
         const MemorySystemParams &mem_params,
         std::unique_ptr<SecurityEngine> engine);

    /** Advances the machine one clock cycle. */
    void tick();

    /** Runs until HALT commits or @p max_cycles elapse. */
    RunResult run(uint64_t max_cycles);

    /** Arms the checkpoint drain barrier: once @p retires
     *  instructions have committed, run() suppresses fetch, drains
     *  the pipeline (ROB, fetch queue, completion events empty),
     *  invokes @p hook exactly once, and resumes normal execution.
     *  The barrier itself is deterministic machine behavior — a run
     *  that arms it with a null hook executes identically to one
     *  that serializes a snapshot at it. */
    void armCheckpoint(uint64_t retires, std::function<void()> hook);

    /** Pipeline empty (checkpoint barrier / snapshot precondition). */
    bool drained() const
    {
        return rob_.empty() && fetch_queue_.empty() &&
               completion_events_.empty() && rs_.empty() &&
               lq_.empty() && sq_.empty();
    }

    bool halted() const { return halted_; }
    uint64_t cycle() const { return cycle_; }
    uint64_t instructionsRetired() const { return retired_; }

    /** Architectural register value via the current RAT mapping
     *  (exact once the pipeline has drained, e.g., after HALT). */
    uint64_t archReg(unsigned arch) const;

    // --- engine/test access ------------------------------------------
    const std::deque<DynInstPtr> &rob() const { return rob_; }
    const std::vector<DynInstPtr> &loadQueue() const { return lq_; }
    const std::vector<DynInstPtr> &storeQueue() const { return sq_; }

    /** Finds an in-flight (non-squashed) instruction by seq. */
    DynInstPtr findInst(SeqNum seq) const;

    MemorySystem &memorySystem() { return memsys_; }
    ByteMemory &memory() { return mem_; }
    PhysRegFile &physRegs() { return prf_; }
    SecurityEngine &engine() { return *engine_; }
    BranchPredictorUnit &bpu() { return bpu_; }
    const CoreParams &params() const { return params_; }
    const Program &program() const { return program_; }
    AttackModel attackModel() const { return params_.attack_model; }

    void setCommitHook(CommitHook hook)
    {
        commit_hook_ = std::move(hook);
    }

    /** Installs the timing-fault injector (nullptr detaches); also
     *  forwarded to the memory system. Faults are timing-only (see
     *  common/fault_hooks.h) and cost one pointer test per hook site
     *  when detached. Set before the first tick. */
    void setFaultInjector(FaultHooks *hooks)
    {
        faults_ = hooks;
        memsys_.setFaultHooks(hooks);
    }
    /** The engine's broadcast-starvation site reads this. */
    FaultHooks *faultHooks() const { return faults_; }

    /** Bounds run() by host wall-clock time (checked every 8192
     *  cycles); 0 disables. The resulting RunResult is
     *  schedule-dependent — sweeps exclude wall-timeout outcomes
     *  from determinism comparisons. */
    void setWallTimeout(double seconds)
    {
        wall_timeout_seconds_ = seconds;
    }

    /** Arms a progress heartbeat: run() invokes @p hook roughly
     *  every @p interval_cycles simulated cycles (checked between
     *  ticks, so fast-forward jumps can overshoot — telemetry
     *  precision, not simulation semantics). Unlike an observer the
     *  heartbeat never disables fast-forward: it only *reads*
     *  cycle/retire counts off the stats path, so it cannot perturb
     *  simulated behaviour. interval 0 or a null hook disarms. */
    void setHeartbeat(uint64_t interval_cycles, HeartbeatHook hook)
    {
        hb_interval_ = hook ? interval_cycles : 0;
        hb_hook_ = std::move(hook);
    }

    /** Installs the observability sink (nullptr detaches); also
     *  forwarded to the engine so it can emit taint events. Must be
     *  set before the first tick — observers never perturb simulated
     *  state, but mid-run attachment would see partial lifecycles. */
    void setObserver(PipelineObserver *obs)
    {
        observer_ = obs;
        engine_->setObserver(obs);
    }

    StatSet &stats() { return stats_; }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    struct FetchEntry {
        DynInstPtr inst;
        uint64_t ready_cycle;
    };

    Program program_;
    CoreParams params_;
    MemorySystem memsys_;
    ByteMemory mem_; ///< architectural backing store
    std::unique_ptr<SecurityEngine> engine_;
    BranchPredictorUnit bpu_;
    PhysRegFile prf_;
    RenameMap rat_;
    StoreSetPredictor store_sets_;
    StatSet stats_;

    uint64_t cycle_ = 0;
    uint64_t retired_ = 0;
    bool halted_ = false;
    SeqNum next_seq_ = 1;

    PipelineObserver *observer_ = nullptr;
    FaultHooks *faults_ = nullptr;
    double wall_timeout_seconds_ = 0.0;
    /** Heartbeat (setHeartbeat); interval 0 = disarmed. */
    uint64_t hb_interval_ = 0;
    HeartbeatHook hb_hook_;
    /** Checkpoint drain barrier (armCheckpoint); 0 = disarmed.
     *  While armed and retired_ >= ckpt_retires_, fetch is
     *  suppressed so the pipeline drains. */
    uint64_t ckpt_retires_ = 0;
    std::function<void()> ckpt_hook_;
    /** Transmitter-delay cycles per gate, accumulated as plain
     *  integers on the hot path and published to the engine's StatSet
     *  (delay.*) at the end of run(). */
    uint64_t delay_mem_cycles_ = 0;
    uint64_t delay_branch_cycles_ = 0;
    uint64_t delay_memorder_cycles_ = 0;

    // Frontend.
    uint64_t fetch_pc_;
    uint64_t fetch_stall_until_ = 0;
    std::deque<FetchEntry> fetch_queue_;

    // Backend structures.
    std::deque<DynInstPtr> rob_;
    std::vector<DynInstPtr> rs_;
    std::vector<DynInstPtr> lq_;
    std::vector<DynInstPtr> sq_;
    std::multimap<uint64_t, DynInstPtr> completion_events_;

    CommitHook commit_hook_;

    // --- stages -------------------------------------------------------
    void commitStage();
    void handleSquashes();
    void writebackStage();
    void memStage();
    void issueStage();
    void renameDispatchStage();
    void fetchStage();
    void updateVp();

    // --- fast-forward --------------------------------------------------
    /** Would the next tick change any machine state? False only when
     *  every stage is provably blocked (stats-pure queries only). */
    bool quiescentCycle() const;
    /** Per-cycle stat charges a blocked (quiescent) cycle makes,
     *  applied in bulk for @p k skipped cycles. */
    void accrueSkippedCycles(uint64_t k);
    /** Skips dead cycles up to the next timed event; returns the
     *  number skipped (0 when the machine is live or the next event
     *  is imminent). */
    uint64_t tryFastForward(uint64_t max_cycles,
                            uint64_t last_progress_cycle);
    /** Stat charged if renaming @p d would stall on a structural
     *  hazard right now, or nullptr if it would proceed. */
    const char *renameHazardStat(const DynInst &d) const;

    // --- helpers -------------------------------------------------------
    /** Charges one policy-gated stall cycle of @p d to @p kind: bumps
     *  the plain delay counter and, when an observer is installed,
     *  reports the cycle with the engine's cause attribution. The
     *  single call site per gate is what makes the profiler's
     *  attributed total exactly equal delay.total_cycles. */
    void noteTransmitterDelay(const DynInst &d, DelayKind kind);
    void completeInst(const DynInstPtr &d);
    void completeLoadData(const DynInstPtr &d);
    bool tryLoadAccess(const DynInstPtr &d);
    void checkViolationsFromStore(const DynInstPtr &st);
    void performControlSquash(const DynInstPtr &branch);
    void performMemSquash(const DynInstPtr &load);
    void squashFrom(SeqNum first_squashed, uint64_t new_fetch_pc,
                    const DynInstPtr &restore_ctrl);
    unsigned execLatency(const Instruction &si) const;
    bool operandsReady(const DynInst &d) const;
    uint64_t readOperand(PhysReg reg) const;
};

} // namespace spt

#endif // SPT_UARCH_CORE_H
