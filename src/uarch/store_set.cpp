#include "uarch/store_set.h"

namespace spt {

StoreSetPredictor::StoreSetPredictor(unsigned ssit_bits,
                                     unsigned lfst_entries)
    : ssit_bits_(ssit_bits), ssit_(size_t{1} << ssit_bits, -1),
      lfst_(lfst_entries)
{
}

size_t
StoreSetPredictor::ssitIndex(uint64_t pc) const
{
    return pc & ((size_t{1} << ssit_bits_) - 1);
}

void
StoreSetPredictor::storeRenamed(uint64_t pc, SeqNum seq)
{
    const int32_t set = ssit_[ssitIndex(pc)];
    if (set < 0)
        return;
    LfstEntry &e = lfst_[static_cast<size_t>(set) % lfst_.size()];
    e.valid = true;
    e.seq = seq;
}

std::optional<SeqNum>
StoreSetPredictor::loadRenamed(uint64_t pc)
{
    const int32_t set = ssit_[ssitIndex(pc)];
    if (set < 0)
        return std::nullopt;
    const LfstEntry &e =
        lfst_[static_cast<size_t>(set) % lfst_.size()];
    if (!e.valid)
        return std::nullopt;
    return e.seq;
}

void
StoreSetPredictor::storeRemoved(uint64_t pc, SeqNum seq)
{
    const int32_t set = ssit_[ssitIndex(pc)];
    if (set < 0)
        return;
    LfstEntry &e = lfst_[static_cast<size_t>(set) % lfst_.size()];
    if (e.valid && e.seq == seq)
        e.valid = false;
}

void
StoreSetPredictor::trainViolation(uint64_t load_pc, uint64_t store_pc)
{
    const size_t li = ssitIndex(load_pc);
    const size_t si = ssitIndex(store_pc);
    const int32_t lset = ssit_[li];
    const int32_t sset = ssit_[si];
    if (lset < 0 && sset < 0) {
        ssit_[li] = ssit_[si] = next_set_id_++;
    } else if (lset >= 0 && sset < 0) {
        ssit_[si] = lset;
    } else if (lset < 0 && sset >= 0) {
        ssit_[li] = sset;
    } else {
        // Merge: adopt the smaller id.
        const int32_t winner = lset < sset ? lset : sset;
        ssit_[li] = ssit_[si] = winner;
    }
}

} // namespace spt
