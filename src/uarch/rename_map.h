/**
 * @file
 * Register alias table: architectural to physical register mapping.
 * Recovery is by reverse ROB walk (each DynInst carries prev_prd),
 * so the map itself needs no checkpoints.
 */

#ifndef SPT_UARCH_RENAME_MAP_H
#define SPT_UARCH_RENAME_MAP_H

#include <array>

#include "isa/instruction.h"
#include "uarch/types.h"

namespace spt {

class RenameMap
{
  public:
    /** Initial mapping: x0 -> phys 0, xN -> phys N. */
    RenameMap()
    {
        for (unsigned i = 0; i < kNumArchRegs; ++i)
            map_[i] = static_cast<PhysReg>(i);
    }

    PhysReg lookup(uint8_t arch) const { return map_[arch]; }

    void set(uint8_t arch, PhysReg phys) { map_[arch] = phys; }

  private:
    std::array<PhysReg, kNumArchRegs> map_{};
};

} // namespace spt

#endif // SPT_UARCH_RENAME_MAP_H
