/**
 * @file
 * Observability hook interface between the core/security engines and
 * the sim-layer instrumentation (sim/trace.h tracer, sim/profile.h
 * delay profiler and interval recorder).
 *
 * The Core and the attached SecurityEngine hold a single
 * `PipelineObserver *` that is null by default; every hook site is a
 * single pointer test when observability is off, so the instrumented
 * build pays nothing until a tracer/profiler is installed. Observers
 * must never mutate simulation state: all hooks take const
 * instructions and are called after the corresponding state change
 * has been applied, so installing an observer cannot perturb
 * simulated cycles or any engine counter (pinned by
 * tests/test_observability.cpp).
 */

#ifndef SPT_UARCH_PIPELINE_OBSERVER_H
#define SPT_UARCH_PIPELINE_OBSERVER_H

#include <cstdint>

namespace spt {

struct DynInst;

/** Which policy gate delayed a transmitter this cycle. */
enum class DelayKind : uint8_t {
    kMemAccess,      ///< load/store blocked by mayAccessMemory
    kBranchResolve,  ///< squash_pending blocked by mayResolveBranch
    kMemOrderSquash, ///< violation squash blocked by
                     ///< maySquashMemViolation
};

/** Why the engine blocked the transmitter (delay attribution). */
enum class DelayCause : uint8_t {
    kTaintedAddr,    ///< address operand still tainted
    kTaintedBranch,  ///< branch/jump source operand still tainted
    kWaitBroadcast,  ///< untaint raised but not yet broadcast
                     ///< (bounded broadcast width)
    kWaitVp,         ///< policy waits for the visibility point
    kMemOrderGate,   ///< memory-order-squash implicit channel gate
    kNumCauses,
};

const char *delayKindName(DelayKind k);
const char *delayCauseName(DelayCause c);

/** Taint-lifecycle events emitted by the SPT engine. */
enum class TaintEvent : uint8_t {
    kTaintedAtRename, ///< destination tainted when renamed
    kVpDeclassify,    ///< leaked operand declassified at the VP
    kForwardUntaint,  ///< forward rule fired
    kBackwardUntaint, ///< backward rule fired
    kShadowUntaint,   ///< load read untainted memory data
    kStlUntaint,      ///< untaint across store-to-load forwarding
    kMapPreclear,     ///< static knowledge map pre-declassified an
                      ///< armed operand (DESIGN.md §13)
};

const char *taintEventName(TaintEvent e);

/** Operand slot naming used by taint events: 0 = destination,
 *  1 = first source, 2 = second source (engine slot order). */
const char *taintSlotName(uint8_t slot);

class PipelineObserver
{
  public:
    virtual ~PipelineObserver() = default;

    // --- pipeline lifecycle (called by the Core) ---------------------
    virtual void fetch(uint64_t /*cycle*/, const DynInst &) {}
    virtual void rename(uint64_t /*cycle*/, const DynInst &) {}
    virtual void issue(uint64_t /*cycle*/, const DynInst &) {}
    /** Result/outcome computed (ALU complete, load data returned,
     *  store translated). */
    virtual void executed(uint64_t /*cycle*/, const DynInst &) {}
    /** A load/store started its memory access (or forwarded). */
    virtual void memAccess(uint64_t /*cycle*/, const DynInst &) {}
    virtual void reachedVp(uint64_t /*cycle*/, const DynInst &) {}
    virtual void retired(uint64_t /*cycle*/, const DynInst &) {}
    virtual void squashed(uint64_t /*cycle*/, const DynInst &) {}

    // --- security engine events --------------------------------------
    virtual void taintEvent(uint64_t /*cycle*/, TaintEvent,
                            const DynInst &, uint8_t /*slot*/)
    {
    }
    /** One cycle of transmitter delay, charged to @p cause. Exactly
     *  one call per (blocked instruction, cycle) the policy gate was
     *  consulted, mirroring the engine's delay.total_cycles
     *  counter. */
    virtual void delayCycle(uint64_t /*cycle*/, const DynInst &,
                            DelayKind, DelayCause)
    {
    }
    /** A previously gated action finally went ahead (delay-interval
     *  end; also fires for never-delayed instructions). */
    virtual void gateOpened(uint64_t /*cycle*/, const DynInst &,
                            DelayKind)
    {
    }

    // --- per-cycle --------------------------------------------------
    /** End of every core cycle (after the engine tick). */
    virtual void cycleEnd(uint64_t /*cycle*/) {}
};

} // namespace spt

#endif // SPT_UARCH_PIPELINE_OBSERVER_H
