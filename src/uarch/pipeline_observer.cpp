#include "uarch/pipeline_observer.h"

namespace spt {

const char *
delayKindName(DelayKind k)
{
    switch (k) {
      case DelayKind::kMemAccess: return "mem";
      case DelayKind::kBranchResolve: return "branch";
      case DelayKind::kMemOrderSquash: return "memorder";
    }
    return "?";
}

const char *
delayCauseName(DelayCause c)
{
    switch (c) {
      case DelayCause::kTaintedAddr: return "tainted-addr";
      case DelayCause::kTaintedBranch: return "tainted-branch";
      case DelayCause::kWaitBroadcast: return "wait-broadcast";
      case DelayCause::kWaitVp: return "wait-vp";
      case DelayCause::kMemOrderGate: return "memorder-gate";
      case DelayCause::kNumCauses: break;
    }
    return "?";
}

const char *
taintEventName(TaintEvent e)
{
    switch (e) {
      case TaintEvent::kTaintedAtRename: return "rename-taint";
      case TaintEvent::kVpDeclassify: return "vp-declassify";
      case TaintEvent::kForwardUntaint: return "forward";
      case TaintEvent::kBackwardUntaint: return "backward";
      case TaintEvent::kShadowUntaint: return "shadow-data";
      case TaintEvent::kStlUntaint: return "stl-forward";
      case TaintEvent::kMapPreclear: return "map-preclear";
    }
    return "?";
}

const char *
taintSlotName(uint8_t slot)
{
    switch (slot) {
      case 0: return "dest";
      case 1: return "src0";
      case 2: return "src1";
    }
    return "?";
}

} // namespace spt
