/**
 * @file
 * Commit, squash/recovery, and visibility-point logic of the Core.
 */

#include <algorithm>

#include "common/logging.h"
#include "uarch/core.h"

namespace spt {

// --------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------

void
Core::commitStage()
{
    for (unsigned n = 0; n < params_.commit_width; ++n) {
        if (rob_.empty())
            break;
        DynInstPtr d = rob_.front();
        if (!d->completed || d->squash_pending ||
            d->mem_violation_pending)
            break;

        if (d->is_store) {
            // The store buffer drains to the L1D; commit does not
            // stall on the access latency.
            mem_.write(d->eff_addr, d->store_data, d->mem_bytes);
            memsys_.access(d->eff_addr, AccessKind::kStore, cycle_);
            engine_->onStoreCommit(*d);
            store_sets_.storeRemoved(d->pc, d->seq);
            SPT_ASSERT(!sq_.empty() && sq_.front() == d,
                       "store commit out of order");
            sq_.erase(sq_.begin());
        }
        if (d->is_load) {
            SPT_ASSERT(!lq_.empty() && lq_.front() == d,
                       "load commit out of order");
            lq_.erase(lq_.begin());
        }
        if (d->is_ctrl) {
            bpu_.commitUpdate(d->pc, d->si, d->exec.is_taken,
                              d->exec.target);
        }
        if (d->has_dest && d->prev_prd != kNoPhysReg)
            prf_.free(d->prev_prd);

        engine_->onRetire(*d);
        if (commit_hook_)
            commit_hook_(*d);
        if (observer_)
            observer_->retired(cycle_, *d);
        rob_.pop_front();
        ++retired_;
        stats_.inc("commit.instructions");

        if (d->si.op == Opcode::kHalt) {
            halted_ = true;
            // Drain: squash everything fetched past the halt so the
            // RAT reflects final architectural state.
            squashFrom(d->seq + 1, d->pc + 1, nullptr);
            break;
        }
    }
}

// --------------------------------------------------------------------
// Squash handling
// --------------------------------------------------------------------

void
Core::handleSquashes()
{
    // At most one squash per cycle; oldest eligible first. A blocked
    // candidate older than the performed squash is charged one delay
    // cycle (candidates younger than it are squashed this cycle and
    // charge nothing — the same engine queries fire either way).
    for (const DynInstPtr &d : rob_) {
        if (d->squash_pending) {
            if (engine_->mayResolveBranch(*d)) {
                performControlSquash(d);
                return;
            }
            noteTransmitterDelay(*d, DelayKind::kBranchResolve);
        }
        if (d->mem_violation_pending) {
            if (engine_->maySquashMemViolation(*d)) {
                performMemSquash(d);
                return;
            }
            noteTransmitterDelay(*d, DelayKind::kMemOrderSquash);
        }
    }
}

void
Core::performControlSquash(const DynInstPtr &branch)
{
    branch->squash_pending = false;
    stats_.inc("squash.control");
    if (observer_)
        observer_->gateOpened(cycle_, *branch,
                              DelayKind::kBranchResolve);
    squashFrom(branch->seq + 1, branch->actual_next_pc, branch);
    bpu_.repair(branch->pc, branch->si, branch->exec.is_taken);
}

void
Core::performMemSquash(const DynInstPtr &load)
{
    stats_.inc("squash.mem_violation");
    if (observer_)
        observer_->gateOpened(cycle_, *load,
                              DelayKind::kMemOrderSquash);
    store_sets_.trainViolation(load->pc, load->violating_store_pc);
    // Squash the load itself and everything younger; refetch from the
    // load's own pc.
    squashFrom(load->seq, load->pc, nullptr);
}

void
Core::squashFrom(SeqNum first_squashed, uint64_t new_fetch_pc,
                 const DynInstPtr &resolved_branch)
{
    // If no explicit control checkpoint drives the recovery (memory
    // violation), restore the oldest squashed control instruction's
    // pre-prediction state.
    const DynInstPtr *restore_from = nullptr;
    if (resolved_branch) {
        restore_from = &resolved_branch;
    } else {
        for (const DynInstPtr &d : rob_) {
            if (d->seq >= first_squashed && d->has_checkpoint) {
                restore_from = &d;
                break;
            }
        }
        if (!restore_from) {
            // The oldest squashed control instruction may still be
            // in the fetch queue (predicted but not yet renamed).
            for (const FetchEntry &fe : fetch_queue_) {
                if (fe.inst->seq >= first_squashed &&
                    fe.inst->has_checkpoint) {
                    restore_from = &fe.inst;
                    break;
                }
            }
        }
    }
    if (restore_from)
        bpu_.restore((*restore_from)->checkpoint);

    // Walk the ROB from the tail, undoing rename mappings.
    while (!rob_.empty() && rob_.back()->seq >= first_squashed) {
        DynInstPtr d = rob_.back();
        d->squashed = true;
        engine_->onSquash(*d);
        if (observer_)
            observer_->squashed(cycle_, *d);
        if (d->has_dest) {
            rat_.set(d->si.rd, d->prev_prd);
            prf_.free(d->prd);
        }
        if (d->is_store)
            store_sets_.storeRemoved(d->pc, d->seq);
        rob_.pop_back();
        stats_.inc("squash.instructions");
    }
    std::erase_if(rs_, [first_squashed](const DynInstPtr &d) {
        return d->seq >= first_squashed;
    });
    std::erase_if(lq_, [first_squashed](const DynInstPtr &d) {
        return d->seq >= first_squashed;
    });
    std::erase_if(sq_, [first_squashed](const DynInstPtr &d) {
        return d->seq >= first_squashed;
    });
    for (FetchEntry &fe : fetch_queue_) {
        fe.inst->squashed = true;
        engine_->onSquash(*fe.inst);
        if (observer_)
            observer_->squashed(cycle_, *fe.inst);
    }
    fetch_queue_.clear();

    fetch_pc_ = new_fetch_pc;
    fetch_stall_until_ = cycle_ + params_.redirect_penalty;
}

// --------------------------------------------------------------------
// Visibility point
// --------------------------------------------------------------------

void
Core::updateVp()
{
    bool blocked = false;
    for (const DynInstPtr &d : rob_) {
        if (!blocked && !d->at_vp) {
            d->at_vp = true;
            if (observer_)
                observer_->reachedVp(cycle_, *d);
        }
        if (params_.attack_model == AttackModel::kSpectre) {
            // Control-flow speculation, augmented with data
            // speculation sources (unresolved store addresses and
            // pending violations) so the VP stays sound under
            // memory-dependence speculation (paper Section 8).
            if (d->is_squash_source &&
                (!d->executed || d->squash_pending))
                blocked = true;
            if (d->is_store && !d->addr_known)
                blocked = true;
            if (d->mem_violation_pending)
                blocked = true;
        } else { // Futuristic: non-squashable.
            if (!d->completed || d->squash_pending ||
                d->mem_violation_pending)
                blocked = true;
        }
        if (blocked && !d->at_vp)
            break;
    }
}

} // namespace spt
