#include "uarch/core.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace spt {

Core::Core(Program program, const CoreParams &params,
           const MemorySystemParams &mem_params,
           std::unique_ptr<SecurityEngine> engine)
    : program_(std::move(program)), params_(params),
      memsys_(mem_params), engine_(std::move(engine)),
      prf_(params.num_phys_regs), fetch_pc_(program_.entry())
{
    SPT_ASSERT(engine_ != nullptr, "core needs a security engine");
    program_.loadInto(mem_);
    // Architectural initial state: sp points at the stack top. The
    // initial RAT maps xN -> phys N, so write phys kRegSp directly.
    prf_.write(kRegSp, kDefaultStackTop);
    engine_->attach(*this);
}

uint64_t
Core::archReg(unsigned arch) const
{
    SPT_ASSERT(arch < kNumArchRegs, "arch register out of range");
    return prf_.value(rat_.lookup(static_cast<uint8_t>(arch)));
}

DynInstPtr
Core::findInst(SeqNum seq) const
{
    for (const DynInstPtr &d : rob_)
        if (d->seq == seq)
            return d;
    return nullptr;
}

uint64_t
Core::readOperand(PhysReg reg) const
{
    return reg == kNoPhysReg ? 0 : prf_.value(reg);
}

bool
Core::operandsReady(const DynInst &d) const
{
    if (d.num_srcs >= 1 && !prf_.ready(d.prs1))
        return false;
    if (d.num_srcs >= 2 && !prf_.ready(d.prs2))
        return false;
    return true;
}

unsigned
Core::execLatency(const Instruction &si) const
{
    switch (si.op) {
      case Opcode::kMul:
      case Opcode::kMulh:
        return 3;
      case Opcode::kDiv:
      case Opcode::kRem:
        return 12;
      default:
        return 1;
    }
}

// --------------------------------------------------------------------
// Top level
// --------------------------------------------------------------------

void
Core::tick()
{
    ++cycle_;
    handleSquashes();
    commitStage();
    if (halted_)
        return;
    writebackStage();
    memStage();
    issueStage();
    renameDispatchStage();
    fetchStage();
    updateVp();
    engine_->tick();
    if (observer_)
        observer_->cycleEnd(cycle_);
}

void
Core::noteTransmitterDelay(const DynInst &d, DelayKind kind)
{
    switch (kind) {
      case DelayKind::kMemAccess: ++delay_mem_cycles_; break;
      case DelayKind::kBranchResolve: ++delay_branch_cycles_; break;
      case DelayKind::kMemOrderSquash: ++delay_memorder_cycles_; break;
    }
    if (observer_)
        observer_->delayCycle(cycle_, d, kind,
                              engine_->delayCause(d, kind));
}

void
Core::armCheckpoint(uint64_t retires, std::function<void()> hook)
{
    SPT_ASSERT(retires != 0, "checkpoint barrier needs a retire "
                             "target");
    ckpt_retires_ = retires;
    ckpt_hook_ = std::move(hook);
}

Core::RunResult
Core::run(uint64_t max_cycles)
{
    uint64_t last_retired = retired_;
    uint64_t last_progress_cycle = cycle_;
    bool livelocked = false;
    bool wall_timeout = false;
    const auto wall_start = std::chrono::steady_clock::now();
    // Fast-forward needs stats-pure gate prediction and an untouched
    // event stream: observers see per-cycle callbacks and fault
    // injectors consume per-cycle RNG draws, so either disables it.
    const bool may_fast_forward = params_.fast_forward &&
                                  !observer_ && !faults_ &&
                                  engine_->fastForwardSafe();
    uint64_t hb_next =
        hb_interval_ ? cycle_ + hb_interval_ : UINT64_MAX;
    while (!halted_ && cycle_ < max_cycles) {
        tick();
        if (retired_ != last_retired) {
            last_retired = retired_;
            last_progress_cycle = cycle_;
        } else if (params_.watchdog_cycles != 0 &&
                   cycle_ - last_progress_cycle >
                       params_.watchdog_cycles) {
            // Bounded-time livelock failure instead of spinning to
            // max_cycles; the caller (Simulator) reports the
            // termination reason and any diagnostics.
            livelocked = true;
            stats_.inc("watchdog.livelocks");
            break;
        }
        if (ckpt_retires_ != 0 && !halted_ &&
            retired_ >= ckpt_retires_ && drained()) {
            // Checkpoint barrier reached: the machine is empty, so a
            // snapshot needs no in-flight state. Disarm before the
            // hook so fetch resumes on the next tick either way.
            ckpt_retires_ = 0;
            if (ckpt_hook_) {
                ckpt_hook_();
                ckpt_hook_ = nullptr;
            }
        }
        uint64_t skipped = 0;
        if (may_fast_forward && !halted_)
            skipped =
                tryFastForward(max_cycles, last_progress_cycle);
        if (cycle_ >= hb_next) {
            // Telemetry-only: the hook reads progress counters and
            // publishes them out-of-band (sim/progress.h); nothing
            // it does can feed back into machine state.
            hb_hook_(cycle_, retired_);
            hb_next = cycle_ + hb_interval_;
        }
        if (wall_timeout_seconds_ > 0.0 &&
            ((cycle_ & 0x1fff) == 0 || skipped >= 0x2000)) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - wall_start;
            if (elapsed.count() > wall_timeout_seconds_) {
                wall_timeout = true;
                stats_.inc("watchdog.wall_timeouts");
                break;
            }
        }
    }
    stats_.set("cycles", cycle_);
    stats_.set("instructions", retired_);
    // Publish the per-gate delay totals with the engine's counters
    // (they are properties of the protection scheme, not the core).
    StatSet &es = engine_->stats();
    es.set("delay.mem_cycles", delay_mem_cycles_);
    es.set("delay.branch_cycles", delay_branch_cycles_);
    es.set("delay.memorder_cycles", delay_memorder_cycles_);
    es.set("delay.total_cycles", delay_mem_cycles_ +
                                     delay_branch_cycles_ +
                                     delay_memorder_cycles_);
    return {cycle_, retired_, halted_, livelocked, wall_timeout};
}

// --------------------------------------------------------------------
// Fast-forward (quiescent-cycle skipping)
// --------------------------------------------------------------------

bool
Core::quiescentCycle() const
{
    // A pure conjunction over tick()'s stages with stats-pure
    // queries only; a single stage that would change state makes
    // the cycle live. Quiescent state is frozen by construction:
    // every gate input (taint masks, at_vp, operand readiness) can
    // only change via the very stage activity this predicate rules
    // out, so a dead machine stays dead until a *timed* event
    // (completion, fetch wakeup) — exactly the wake set
    // tryFastForward computes. The conjuncts are ordered cheapest /
    // most-likely-live first so the predicate is O(1) on most live
    // cycles; conjunction order cannot change the verdict.

    // Fetch: an eligible fetch touches the I-cache and fetch queue.
    if (cycle_ >= fetch_stall_until_ &&
        fetch_queue_.size() < params_.fetch_queue_size &&
        program_.validPc(fetch_pc_))
        return false;
    // Commit: the ROB head must be blocked.
    if (!rob_.empty()) {
        const DynInst &f = *rob_.front();
        if (f.completed && !f.squash_pending &&
            !f.mem_violation_pending)
            return false;
    }
    // Rename: a ready, hazard-free fetch-queue head would rename.
    if (!fetch_queue_.empty()) {
        const FetchEntry &fe = fetch_queue_.front();
        if (fe.ready_cycle <= cycle_ &&
            renameHazardStat(*fe.inst) == nullptr)
            return false;
    }
    // Issue: any ready reservation-station entry would issue.
    for (const DynInstPtr &d : rs_)
        if (operandsReady(*d))
            return false;
    // Squash gates (stats-pure on every engine).
    for (const DynInstPtr &d : rob_) {
        if (d->squash_pending && engine_->mayResolveBranch(*d))
            return false;
        if (d->mem_violation_pending &&
            engine_->maySquashMemViolation(*d))
            return false;
    }
    // Memory gates, via the stats-pure transmitPublic claim (equal
    // to the gate whenever fastForwardSafe holds). A gate-open load
    // counts as live even if the access would be refused (MSHR
    // full / dependence stalls mutate stats and cache state).
    for (const DynInstPtr &st : sq_) {
        if (!st->addr_known || st->completed || st->squashed)
            continue;
        if (engine_->transmitPublic(*st, DelayKind::kMemAccess))
            return false;
        break; // stores translate in order: only the first matters
    }
    for (const DynInstPtr &ld : lq_) {
        if (!ld->addr_known || ld->access_done || ld->squashed ||
            ld->mem_violation_pending)
            continue;
        if (engine_->transmitPublic(*ld, DelayKind::kMemAccess))
            return false;
    }
    return engine_->quiescent();
}

void
Core::accrueSkippedCycles(uint64_t k)
{
    // Exactly the stat charges k blocked ticks would have made, in
    // bulk. Structured like tick(): squash gates, then the LSU, then
    // rename and fetch stalls.
    for (const DynInstPtr &d : rob_) {
        if (d->squash_pending)
            delay_branch_cycles_ += k;
        if (d->mem_violation_pending)
            delay_memorder_cycles_ += k;
    }
    for (const DynInstPtr &st : sq_) {
        if (!st->addr_known || st->completed || st->squashed)
            continue;
        delay_mem_cycles_ += k;
        stats_.inc("lsu.store_policy_delays", k);
        engine_->accrueBlockedTransmit(*st, DelayKind::kMemAccess,
                                       k);
        break;
    }
    for (const DynInstPtr &ld : lq_) {
        if (!ld->addr_known || ld->access_done || ld->squashed ||
            ld->mem_violation_pending)
            continue;
        delay_mem_cycles_ += k;
        stats_.inc("lsu.load_policy_delay_cycles", k);
        engine_->accrueBlockedTransmit(*ld, DelayKind::kMemAccess,
                                       k);
    }
    if (!fetch_queue_.empty()) {
        const FetchEntry &fe = fetch_queue_.front();
        if (fe.ready_cycle <= cycle_)
            if (const char *stat = renameHazardStat(*fe.inst))
                stats_.inc(stat, k);
    }
    if (cycle_ >= fetch_stall_until_ &&
        fetch_queue_.size() < params_.fetch_queue_size &&
        !program_.validPc(fetch_pc_))
        stats_.inc("fetch.invalid_pc_stalls", k);
    stats_.inc("ff.skipped_cycles", k);
}

uint64_t
Core::tryFastForward(uint64_t max_cycles,
                     uint64_t last_progress_cycle)
{
    // The wake cycle: the first future cycle whose tick may do real
    // work. max_cycles itself still ticks for real (matching the
    // run() loop bound), as does the watchdog-tripping cycle.
    uint64_t wake = max_cycles;
    if (!completion_events_.empty())
        wake = std::min(wake, completion_events_.begin()->first);
    if (fetch_stall_until_ > cycle_)
        wake = std::min(wake, fetch_stall_until_);
    if (!fetch_queue_.empty() &&
        fetch_queue_.front().ready_cycle > cycle_)
        wake = std::min(wake, fetch_queue_.front().ready_cycle);
    if (params_.watchdog_cycles != 0)
        wake = std::min(wake, last_progress_cycle +
                                  params_.watchdog_cycles + 1);
    if (wake <= cycle_ + 1)
        return 0; // nothing to skip
    if (!quiescentCycle())
        return 0;
    const uint64_t skipped = wake - 1 - cycle_;
    accrueSkippedCycles(skipped);
    cycle_ += skipped;
    stats_.inc("ff.windows");
    return skipped;
}

// --------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------

void
Core::fetchStage()
{
    if (halted_ || cycle_ < fetch_stall_until_)
        return;
    // Checkpoint drain barrier: past the target retire count, stop
    // feeding the pipeline so it empties (uarch/core.h
    // armCheckpoint).
    if (ckpt_retires_ != 0 && retired_ >= ckpt_retires_)
        return;
    if (fetch_queue_.size() >= params_.fetch_queue_size)
        return;

    uint64_t pc = fetch_pc_;
    const unsigned line_bytes = memsys_.l1i().params().line_bytes;
    uint64_t cur_line = ~uint64_t{0};
    unsigned icache_latency = 0;

    for (unsigned count = 0; count < params_.fetch_width; ++count) {
        if (!program_.validPc(pc)) {
            // Wrong-path fetch ran off the program; wait for a
            // redirect.
            stats_.inc("fetch.invalid_pc_stalls");
            break;
        }
        const uint64_t line = pc * kInstrBytes / line_bytes;
        if (line != cur_line && !params_.perfect_icache) {
            const MemAccessResult res = memsys_.access(
                pc * kInstrBytes, AccessKind::kIfetch, cycle_);
            if (res.hit_level > 1) {
                // Miss: stall until the fill arrives, then refetch.
                fetch_stall_until_ = cycle_ + res.latency;
                stats_.inc("fetch.icache_miss_stalls");
                break;
            }
            cur_line = line;
            icache_latency = res.latency;
        }

        auto d = std::make_shared<DynInst>();
        d->seq = next_seq_++;
        d->pc = pc;
        d->si = program_.at(pc);
        const OpTraits &t = opTraits(d->si.op);
        d->is_load = t.is_load;
        d->is_store = t.is_store;
        d->is_ctrl = t.is_cond_branch || t.is_jump;
        d->is_squash_source =
            t.is_cond_branch || d->si.op == Opcode::kJalr;
        d->has_dest = t.has_dest && d->si.rd != kRegZero;
        d->num_srcs = t.num_srcs;
        d->mem_bytes = t.mem_bytes;

        if (d->is_ctrl) {
            d->has_checkpoint = true;
            d->checkpoint = bpu_.checkpoint();
            const BranchPrediction p = bpu_.predict(pc, d->si);
            d->predicted_taken = p.taken;
            d->pred_next_pc = p.next_pc;
        } else {
            d->pred_next_pc = pc + 1;
        }

        fetch_queue_.push_back(
            {d, cycle_ + icache_latency + params_.frontend_extra_delay});
        stats_.inc("fetch.instructions");
        if (observer_)
            observer_->fetch(cycle_, *d);

        const uint64_t next = d->pred_next_pc;
        pc = next;
        if (d->is_ctrl && next != d->pc + 1) {
            // Redirected fetch resumes at the target next cycle.
            ++count;
            break;
        }
    }
    fetch_pc_ = pc;
}

// --------------------------------------------------------------------
// Rename + dispatch
// --------------------------------------------------------------------

namespace {

/** NOP/HALT/plain JAL complete at dispatch and skip the RS. */
bool
needsReservationStation(const DynInst &d)
{
    return !(d.si.op == Opcode::kNop || d.si.op == Opcode::kHalt ||
             (d.si.op == Opcode::kJal && !d.has_dest));
}

} // namespace

const char *
Core::renameHazardStat(const DynInst &d) const
{
    // Check order matches the charge order below: the first failing
    // structural check is the one billed per stalled cycle.
    if (rob_.size() >= params_.rob_size)
        return "rename.rob_full";
    if (d.has_dest && !prf_.hasFree())
        return "rename.no_phys_regs";
    if (d.is_load && lq_.size() >= params_.lq_size)
        return "rename.lq_full";
    if (d.is_store && sq_.size() >= params_.sq_size)
        return "rename.sq_full";
    if (needsReservationStation(d) && rs_.size() >= params_.rs_size)
        return "rename.rs_full";
    return nullptr;
}

void
Core::renameDispatchStage()
{
    for (unsigned n = 0; n < params_.rename_width; ++n) {
        if (fetch_queue_.empty())
            break;
        FetchEntry &fe = fetch_queue_.front();
        if (fe.ready_cycle > cycle_)
            break;
        DynInstPtr d = fe.inst;

        // Structural hazards.
        if (const char *hazard = renameHazardStat(*d)) {
            stats_.inc(hazard);
            break;
        }
        const bool needs_rs = needsReservationStation(*d);

        // Rename.
        if (d->num_srcs >= 1)
            d->prs1 = rat_.lookup(d->si.rs1);
        if (d->num_srcs >= 2)
            d->prs2 = rat_.lookup(d->si.rs2);
        if (d->has_dest) {
            d->prev_prd = rat_.lookup(d->si.rd);
            d->prd = prf_.allocate();
            rat_.set(d->si.rd, d->prd);
        }
        if (observer_)
            observer_->rename(cycle_, *d);
        engine_->onRename(*d);

        // Dispatch.
        rob_.push_back(d);
        if (d->is_load) {
            lq_.push_back(d);
            if (auto wait = store_sets_.loadRenamed(d->pc))
                d->wait_store_seq = *wait;
        }
        if (d->is_store) {
            sq_.push_back(d);
            store_sets_.storeRenamed(d->pc, d->seq);
        }
        if (needs_rs) {
            rs_.push_back(d);
        } else {
            // NOP/HALT/plain JAL complete at dispatch.
            d->executed = true;
            d->completed = true;
            d->actual_next_pc = d->pred_next_pc;
        }
        fetch_queue_.pop_front();
        stats_.inc("rename.instructions");
    }
}

// --------------------------------------------------------------------
// Issue + execute scheduling
// --------------------------------------------------------------------

void
Core::issueStage()
{
    unsigned issue_width = params_.issue_width;
    if (faults_ && faults_->fire(FaultSite::kIssueJitter)) {
        // Scheduler jitter: nothing issues this cycle.
        issue_width = 0;
        stats_.inc("fault.issue_stall_cycles");
    }
    unsigned issued = 0;
    // rs_ is kept in program order (dispatch order); oldest first.
    for (const DynInstPtr &d : rs_) {
        if (issued >= issue_width)
            break;
        if (d->issued || !operandsReady(*d))
            continue;
        d->issued = true;
        ++issued;
        stats_.inc("issue.instructions");
        if (observer_)
            observer_->issue(cycle_, *d);

        const uint64_t rs1v = readOperand(d->prs1);
        const uint64_t rs2v = readOperand(d->prs2);
        d->exec = evaluateOp(d->si, d->pc, rs1v, rs2v);
        completion_events_.emplace(cycle_ + execLatency(d->si), d);
    }
    std::erase_if(rs_,
                  [](const DynInstPtr &d) { return d->issued; });
}

// --------------------------------------------------------------------
// Writeback (completion events)
// --------------------------------------------------------------------

void
Core::writebackStage()
{
    while (!completion_events_.empty() &&
           completion_events_.begin()->first <= cycle_) {
        DynInstPtr d = completion_events_.begin()->second;
        completion_events_.erase(completion_events_.begin());
        if (d->squashed)
            continue;
        completeInst(d);
    }
}

void
Core::completeInst(const DynInstPtr &d)
{
    if (d->isMem() && !d->addr_known) {
        // AGU completion: the virtual address (and store data) is now
        // known to the LSQ, before any memory access is performed.
        d->addr_known = true;
        d->eff_addr = d->exec.mem_addr;
        if (d->is_store) {
            d->store_data = d->exec.value;
            d->executed = true;
            if (observer_)
                observer_->executed(cycle_, *d);
            checkViolationsFromStore(d);
        }
        return;
    }
    if (d->is_load) {
        completeLoadData(d);
        return;
    }

    // ALU / control completion.
    d->executed = true;
    d->completed = true;
    if (observer_)
        observer_->executed(cycle_, *d);
    if (d->has_dest) {
        d->result = d->exec.value;
        prf_.write(d->prd, d->result);
    }
    if (d->is_ctrl) {
        d->actual_next_pc =
            d->exec.is_taken ? d->exec.target : d->pc + 1;
        if (d->actual_next_pc != d->pred_next_pc) {
            d->mispredicted = true;
            d->squash_pending = true;
            stats_.inc("branch.mispredicts");
        } else {
            stats_.inc("branch.correct");
            if (faults_ && d->is_squash_source &&
                faults_->fire(FaultSite::kExtraSquash)) {
                // Forced squash of a correctly predicted branch:
                // refetches down the same (correct) path, so the
                // architectural result is unchanged. Restricted to
                // squash-source branches — the VP already treats
                // them as unresolved until squash_pending clears,
                // so no instruction past the VP is ever squashed.
                d->squash_pending = true;
                stats_.inc("fault.extra_squashes");
            }
        }
    }
}

} // namespace spt
