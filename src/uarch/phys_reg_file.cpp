#include "uarch/phys_reg_file.h"

#include "common/logging.h"

namespace spt {

PhysRegFile::PhysRegFile(unsigned num_regs)
    : values_(num_regs, 0), ready_(num_regs, 0)
{
    SPT_ASSERT(num_regs > kNumArchRegs + 1,
               "physical register file too small");
    // Register 0 is the architectural-zero register: ready, value 0,
    // never on the free list. Registers 1..31 back the initial RAT.
    ready_[kZeroReg] = 1;
    for (PhysReg r = 1; r < kNumArchRegs; ++r)
        ready_[r] = 1;
    for (PhysReg r = kNumArchRegs;
         r < static_cast<PhysReg>(num_regs); ++r)
        free_list_.push_back(r);
}

PhysReg
PhysRegFile::allocate()
{
    SPT_ASSERT(!free_list_.empty(), "physical register file exhausted");
    const PhysReg reg = free_list_.front();
    free_list_.pop_front();
    ready_[reg] = 0;
    return reg;
}

void
PhysRegFile::free(PhysReg reg)
{
    SPT_ASSERT(reg != kZeroReg, "freeing the zero register");
    SPT_ASSERT(reg < values_.size(), "freeing out-of-range register");
    free_list_.push_back(reg);
}

void
PhysRegFile::write(PhysReg reg, uint64_t value)
{
    if (reg == kZeroReg)
        return;
    values_[reg] = value;
    ready_[reg] = 1;
}

} // namespace spt
