/**
 * @file
 * Runtime machine-wide invariant watchdog, attached through the
 * PipelineObserver mux. Observes only — it never mutates simulated
 * state, so golden untaint.* counters are bit-identical with the
 * checker on (pinned by tests/test_fault_injection.cpp).
 *
 * Invariant catalogue (DESIGN.md §10):
 *  - forward progress: if no instruction commits for
 *    `watchdog_cycles`, declare livelock;
 *  - commit order: retired seq numbers strictly increase;
 *  - no tainted transmitter: at every gate opening (memory access,
 *    branch resolution, memory-order squash) the engine's
 *    ground-truth claim `transmitPublic` must hold — this is the
 *    paper's core security property, checked against the *claim*,
 *    not the (possibly mutation-seeded) policy gate;
 *  - taint conservation: observed untaint events must equal the
 *    engine's own `untaint.events` counter at the end of the run;
 *  - structural consistency, every cycle: ROB within capacity and
 *    seq-sorted, LQ/SQ within capacity and subsets of the ROB,
 *    engine taint slots resolve to their owning instruction
 *    (SecurityEngine::taintStateConsistent), and the broadcast
 *    queue is bounded by 3 flags per ROB entry.
 *
 * On violation the checker records a structured DiagnosticReport
 * (machine dump + the last 64 pipeline events) instead of aborting;
 * the run continues so a campaign can count every violation, and
 * sweeps classify the outcome afterwards (RunStatus::kViolation).
 */

#ifndef SPT_UARCH_INVARIANT_CHECKER_H
#define SPT_UARCH_INVARIANT_CHECKER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "uarch/pipeline_observer.h"
#include "uarch/types.h"

namespace spt {

class Core;
class JsonWriter;

/** A structured post-mortem: what failed, where the machine was,
 *  and the recent event history leading up to it. */
struct DiagnosticReport {
    std::string kind;    ///< "livelock", "tainted-transmitter", ...
    std::string message; ///< one-line specifics
    uint64_t cycle = 0;
    SeqNum seq = 0; ///< offending instruction, 0 if machine-wide
    uint64_t pc = 0;
    std::vector<std::string> rob;    ///< head of the ROB, one line each
    std::vector<std::string> events; ///< last <= 64 pipeline events
    std::map<std::string, uint64_t> engine_counters;

    void toJson(JsonWriter &jw) const;
    std::string toText() const;
};

class InvariantChecker : public PipelineObserver
{
  public:
    struct Params {
        /** Cycles without a commit before livelock is declared;
         *  0 disables the forward-progress check. */
        uint64_t watchdog_cycles = 200'000;
        /** Reports kept; violations past the cap are only counted. */
        std::size_t max_reports = 8;
    };

    explicit InvariantChecker(Core &core);
    InvariantChecker(Core &core, const Params &params);

    // --- PipelineObserver ---------------------------------------------
    void rename(uint64_t cycle, const DynInst &d) override;
    void issue(uint64_t cycle, const DynInst &d) override;
    void executed(uint64_t cycle, const DynInst &d) override;
    void memAccess(uint64_t cycle, const DynInst &d) override;
    void reachedVp(uint64_t cycle, const DynInst &d) override;
    void retired(uint64_t cycle, const DynInst &d) override;
    void squashed(uint64_t cycle, const DynInst &d) override;
    void taintEvent(uint64_t cycle, TaintEvent ev, const DynInst &d,
                    uint8_t slot) override;
    void gateOpened(uint64_t cycle, const DynInst &d,
                    DelayKind kind) override;
    void cycleEnd(uint64_t cycle) override;

    /** End-of-run checks (taint conservation); call after the core
     *  stops, before reading verdicts. */
    void finish(uint64_t final_cycle);

    bool clean() const { return violations_ == 0; }
    uint64_t violations() const { return violations_; }
    /** Violations excluding forward-progress (livelock) reports —
     *  what sweeps classify as RunStatus::kViolation. A run that
     *  merely stalled is a livelock, not a broken invariant; a run
     *  that stalled *and* leaked is a violation. */
    uint64_t
    securityViolations() const
    {
        return violations_ - livelock_violations_;
    }
    bool livelocked() const { return livelocked_; }
    const std::vector<DiagnosticReport> &reports() const
    {
        return reports_;
    }
    /** All retained reports as one JSON array (deterministic). */
    std::string reportsJson() const;

    /** Machine dump for a livelock detected by the core's own
     *  watchdog when no checker is attached (Simulator uses this to
     *  still produce a structured report). */
    static DiagnosticReport livelockReport(Core &core,
                                           uint64_t cycle);

  private:
    struct Event {
        uint64_t cycle;
        uint8_t kind;
        SeqNum seq;
        uint64_t pc;
    };
    static constexpr std::size_t kEventRing = 64;

    Core &core_;
    Params params_;

    uint64_t violations_ = 0;
    uint64_t livelock_violations_ = 0;
    bool livelocked_ = false;
    std::vector<DiagnosticReport> reports_;

    uint64_t last_commit_cycle_ = 0;
    SeqNum last_retired_seq_ = 0;
    uint64_t observed_untaints_ = 0;

    std::vector<Event> ring_;
    std::size_t ring_next_ = 0;

    void record(uint64_t cycle, uint8_t kind, const DynInst &d);
    void checkTransmit(uint64_t cycle, const DynInst &d,
                       DelayKind kind, const char *what);
    void checkStructure(uint64_t cycle);
    void violation(const char *kind, std::string message,
                   uint64_t cycle, const DynInst *d);
    std::vector<std::string> eventLines() const;
};

} // namespace spt

#endif // SPT_UARCH_INVARIANT_CHECKER_H
