/**
 * @file
 * The hook interface between the out-of-order core and a protection
 * scheme. The core consults the engine before every observable
 * speculative action (memory access, branch-resolution effects,
 * memory-order-violation squash) and notifies it of every pipeline
 * event it needs to maintain taint state.
 *
 * Implementations live in src/core (SPT, STT, SecureBaseline); the
 * trivial pass-through UnsafeEngine below is the insecure baseline.
 */

#ifndef SPT_UARCH_SECURITY_ENGINE_H
#define SPT_UARCH_SECURITY_ENGINE_H

#include "common/stats.h"
#include "uarch/dyn_inst.h"
#include "uarch/pipeline_observer.h"

namespace spt {

class Core;

class SecurityEngine
{
  public:
    virtual ~SecurityEngine() = default;

    /** Called once, when the core takes ownership of the engine. */
    virtual void attach(Core &core) { core_ = &core; }

    /** A scheme name for stats/reporting. */
    virtual const char *name() const = 0;

    // --- pipeline event notifications --------------------------------
    virtual void onRename(DynInst &) {}
    virtual void onSquash(const DynInst &) {}
    virtual void onRetire(const DynInst &) {}

    /** A load obtained its data. @p forwarded: via store-to-load
     *  forwarding from store @p store_seq; otherwise from memory at
     *  load.eff_addr. Called before the dest value broadcast. */
    virtual void onLoadData(DynInst &, bool /*forwarded*/,
                            SeqNum /*store_seq*/)
    {
    }

    /** A retired store is writing the L1D. */
    virtual void onStoreCommit(const DynInst &) {}

    // --- protection-policy queries ------------------------------------
    /** May this load/store perform its memory access (TLB + cache),
     *  i.e., transmit its address operand? */
    virtual bool mayAccessMemory(const DynInst &) const
    {
        return true;
    }

    /** May this control-flow instruction's resolution effects
     *  (redirect + squash) become visible? */
    virtual bool mayResolveBranch(const DynInst &) const
    {
        return true;
    }

    /** May the memory-order-violation squash of this load proceed? */
    virtual bool maySquashMemViolation(const DynInst &) const
    {
        return true;
    }

    /**
     * Is the fact that store-to-load forwarding occurs between this
     * pair public (inferable by the attacker)? If not, the core hides
     * the decision by performing the cache access anyway, per the
     * paper's Section 6.7 mechanism (inherited from STT). The
     * insecure default is "public", i.e., the ordinary forwarding
     * fast path.
     */
    virtual bool stlForwardingPublic(const DynInst & /*load*/,
                                     const DynInst & /*store*/) const
    {
        return true;
    }

    // --- per-cycle work -------------------------------------------------
    /** Runs at the end of every core cycle (after the VP scan). */
    virtual void tick() {}

    // --- fast-forward support (uarch/core.cpp fastForward) ---------------
    /** Would tick() be a pure no-op right now — no queued work, no
     *  declassification the VP cursor has not consumed? Required for
     *  the core to skip quiescent cycles; the default (true) is
     *  correct for engines whose tick() does nothing. */
    virtual bool quiescent() const { return true; }

    /** May the core fast-forward at all under this engine? Engines
     *  whose policy gates mutate state or deliberately diverge from
     *  transmitPublic (chaos mutations) must refuse. */
    virtual bool fastForwardSafe() const { return true; }

    /** Bulk equivalent of the per-cycle stat accrual a blocked
     *  policy query performs: @p d stayed blocked on @p kind for
     *  @p cycles consecutive skipped cycles. Engines whose gates
     *  count block decisions (SPT, SecureBaseline) override this so
     *  fast-forwarded runs keep bit-identical counters. */
    virtual void accrueBlockedTransmit(const DynInst &, DelayKind,
                                       uint64_t /*cycles*/)
    {
    }

    // --- ground truth (runtime invariant checker) -----------------------
    /**
     * Would letting @p d transmit via @p kind right now leak a
     * non-public operand? This is the scheme's *security claim*,
     * separated from the policy gate (mayAccessMemory &c.) that
     * enforces it: the gate may carry a deliberately seeded testing
     * mutation (see SptConfig::Mutation), the claim never does. The
     * InvariantChecker queries it at every gate opening; a scheme
     * whose gate lets a non-public transmit through is flagged as a
     * security violation. Must be state- and stats-pure. The default
     * matches UnsafeEngine's contract: it makes no claims, so
     * everything is "public" and the checker never flags it.
     */
    virtual bool transmitPublic(const DynInst &, DelayKind) const
    {
        return true;
    }

    /** Is the engine's per-instruction taint bookkeeping for the
     *  in-flight (non-squashed) ROB entry @p d self-consistent
     *  (index maps resolve, slot really belongs to @p d)? Checked by
     *  the InvariantChecker on every structural scan. */
    virtual bool taintStateConsistent(const DynInst &) const
    {
        return true;
    }

    // --- observability -------------------------------------------------
    /** Installed by the Core (null when tracing/profiling is off);
     *  only queried behind a null check, so the hot path pays one
     *  pointer test. */
    void setObserver(PipelineObserver *obs) { observer_ = obs; }
    PipelineObserver *observer() const { return observer_; }

    /** Attribution of a transmitter-delay cycle: why is @p d still
     *  gated? Called only while an observer is installed, after the
     *  corresponding policy query returned false. The default maps
     *  each gate to its scheme-independent cause (the secure
     *  baseline delays memory to the VP). */
    virtual DelayCause
    delayCause(const DynInst &, DelayKind kind) const
    {
        switch (kind) {
          case DelayKind::kMemAccess:
            return DelayCause::kWaitVp;
          case DelayKind::kBranchResolve:
            return DelayCause::kTaintedBranch;
          case DelayKind::kMemOrderSquash:
            return DelayCause::kMemOrderGate;
        }
        return DelayCause::kMemOrderGate;
    }

    /** Untaint broadcasts raised but not yet granted (interval
     *  metrics); schemes without a broadcast structure report 0. */
    virtual uint64_t broadcastQueueOccupancy() const { return 0; }

    /** Physical registers currently carrying any taint (interval
     *  metrics); schemes without taint state report 0. */
    virtual uint64_t taintedRegCount() const { return 0; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  protected:
    Core *core_ = nullptr;
    PipelineObserver *observer_ = nullptr;
    /** Mutable: const policy queries count their block decisions. */
    mutable StatSet stats_;
};

/** The unmodified, insecure processor (UnsafeBaseline in Table 2). */
class UnsafeEngine : public SecurityEngine
{
  public:
    const char *name() const override { return "unsafe"; }
};

} // namespace spt

#endif // SPT_UARCH_SECURITY_ENGINE_H
