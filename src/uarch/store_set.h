/**
 * @file
 * Store-set memory-dependence predictor (Chrysos & Emer): SSIT maps
 * instruction pcs to store-set ids; LFST tracks the last fetched
 * store of each set. A load whose pc belongs to a store set waits
 * for that set's last in-flight store instead of speculating past
 * it.
 *
 * Training happens only when a memory-order violation squash is
 * actually performed (i.e., after the security policy released the
 * squash), so predictor state never reflects tainted-address aliases
 * — the prediction-based implicit-channel rule.
 */

#ifndef SPT_UARCH_STORE_SET_H
#define SPT_UARCH_STORE_SET_H

#include <cstdint>
#include <optional>
#include <vector>

#include "uarch/types.h"

namespace spt {

class StoreSetPredictor
{
  public:
    explicit StoreSetPredictor(unsigned ssit_bits = 10,
                               unsigned lfst_entries = 128);

    /** A store was renamed: returns nothing; records it as the last
     *  fetched store of its set (if it has one). */
    void storeRenamed(uint64_t pc, SeqNum seq);

    /** A load was renamed: returns the seq of the store it should
     *  wait for, if its pc belongs to a store set whose last store
     *  is still in flight. */
    std::optional<SeqNum> loadRenamed(uint64_t pc);

    /** A store left the pipeline (committed or squashed). */
    void storeRemoved(uint64_t pc, SeqNum seq);

    /** Train on a performed violation squash between @p load_pc and
     *  @p store_pc. */
    void trainViolation(uint64_t load_pc, uint64_t store_pc);

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    struct LfstEntry {
        bool valid = false;
        SeqNum seq = 0;
    };

    unsigned ssit_bits_;
    std::vector<int32_t> ssit_;    ///< -1 = no set
    std::vector<LfstEntry> lfst_;
    int32_t next_set_id_ = 0;

    size_t ssitIndex(uint64_t pc) const;
};

} // namespace spt

#endif // SPT_UARCH_STORE_SET_H
