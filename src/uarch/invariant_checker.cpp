#include "uarch/invariant_checker.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/json.h"
#include "uarch/core.h"

namespace spt {

namespace {

enum EventKind : uint8_t {
    kEvRename,
    kEvIssue,
    kEvExecuted,
    kEvMemAccess,
    kEvVp,
    kEvRetired,
    kEvSquashed,
    kEvTaint,
    kEvGate,
};

const char *
eventKindName(uint8_t kind)
{
    switch (kind) {
      case kEvRename:    return "rename";
      case kEvIssue:     return "issue";
      case kEvExecuted:  return "executed";
      case kEvMemAccess: return "mem-access";
      case kEvVp:        return "vp";
      case kEvRetired:   return "retired";
      case kEvSquashed:  return "squashed";
      case kEvTaint:     return "taint";
      case kEvGate:      return "gate-open";
    }
    return "?";
}

std::string
instLine(const DynInst &d)
{
    std::ostringstream os;
    os << "seq=" << d.seq << " pc=" << d.pc << " `"
       << toString(d.si) << "`";
    if (d.issued)
        os << " issued";
    if (d.executed)
        os << " executed";
    if (d.completed)
        os << " completed";
    if (d.at_vp)
        os << " at_vp";
    if (d.squash_pending)
        os << " squash_pending";
    if (d.mem_violation_pending)
        os << " mem_violation_pending";
    if (d.squashed)
        os << " squashed";
    return os.str();
}

std::vector<std::string>
robDump(const Core &core, std::size_t cap = 64)
{
    std::vector<std::string> lines;
    for (const DynInstPtr &d : core.rob()) {
        if (lines.size() >= cap) {
            lines.push_back("... (" +
                            std::to_string(core.rob().size() - cap) +
                            " more)");
            break;
        }
        lines.push_back(instLine(*d));
    }
    return lines;
}

} // namespace

// --------------------------------------------------------------------
// DiagnosticReport
// --------------------------------------------------------------------

void
DiagnosticReport::toJson(JsonWriter &jw) const
{
    jw.beginObject();
    jw.field("kind", kind);
    jw.field("message", message);
    jw.field("cycle", cycle);
    jw.field("seq", static_cast<uint64_t>(seq));
    jw.field("pc", pc);
    jw.key("rob").beginArray();
    for (const std::string &line : rob)
        jw.value(line);
    jw.endArray();
    jw.key("events").beginArray();
    for (const std::string &line : events)
        jw.value(line);
    jw.endArray();
    jw.key("engine_counters").beginObject();
    for (const auto &[name, value] : engine_counters)
        jw.field(name, value);
    jw.endObject();
    jw.endObject();
}

std::string
DiagnosticReport::toText() const
{
    std::ostringstream os;
    os << "invariant violation: " << kind << " at cycle " << cycle
       << "\n  " << message << "\n";
    if (!rob.empty()) {
        os << "  rob:\n";
        for (const std::string &line : rob)
            os << "    " << line << "\n";
    }
    if (!events.empty()) {
        os << "  recent events:\n";
        for (const std::string &line : events)
            os << "    " << line << "\n";
    }
    return os.str();
}

// --------------------------------------------------------------------
// InvariantChecker
// --------------------------------------------------------------------

InvariantChecker::InvariantChecker(Core &core)
    : InvariantChecker(core, Params())
{
}

InvariantChecker::InvariantChecker(Core &core, const Params &params)
    : core_(core), params_(params)
{
    ring_.reserve(kEventRing);
}

void
InvariantChecker::record(uint64_t cycle, uint8_t kind,
                         const DynInst &d)
{
    const Event ev{cycle, kind, d.seq, d.pc};
    if (ring_.size() < kEventRing) {
        ring_.push_back(ev);
    } else {
        ring_[ring_next_] = ev;
        ring_next_ = (ring_next_ + 1) % kEventRing;
    }
}

std::vector<std::string>
InvariantChecker::eventLines() const
{
    std::vector<std::string> lines;
    lines.reserve(ring_.size());
    const std::size_t n = ring_.size();
    const std::size_t start = n < kEventRing ? 0 : ring_next_;
    for (std::size_t i = 0; i < n; ++i) {
        const Event &ev = ring_[(start + i) % kEventRing];
        std::ostringstream os;
        os << "cycle=" << ev.cycle << " "
           << eventKindName(ev.kind) << " seq=" << ev.seq
           << " pc=" << ev.pc;
        lines.push_back(os.str());
    }
    return lines;
}

void
InvariantChecker::violation(const char *kind, std::string message,
                            uint64_t cycle, const DynInst *d)
{
    ++violations_;
    if (std::strcmp(kind, "livelock") == 0)
        ++livelock_violations_;
    if (reports_.size() >= params_.max_reports)
        return;
    DiagnosticReport rep;
    rep.kind = kind;
    rep.message = std::move(message);
    rep.cycle = cycle;
    if (d) {
        rep.seq = d->seq;
        rep.pc = d->pc;
    }
    rep.rob = robDump(core_);
    rep.events = eventLines();
    rep.engine_counters = core_.engine().stats().counters();
    reports_.push_back(std::move(rep));
}

void
InvariantChecker::rename(uint64_t cycle, const DynInst &d)
{
    record(cycle, kEvRename, d);
}

void
InvariantChecker::issue(uint64_t cycle, const DynInst &d)
{
    record(cycle, kEvIssue, d);
}

void
InvariantChecker::executed(uint64_t cycle, const DynInst &d)
{
    record(cycle, kEvExecuted, d);
}

void
InvariantChecker::reachedVp(uint64_t cycle, const DynInst &d)
{
    record(cycle, kEvVp, d);
}

void
InvariantChecker::squashed(uint64_t cycle, const DynInst &d)
{
    record(cycle, kEvSquashed, d);
}

void
InvariantChecker::checkTransmit(uint64_t cycle, const DynInst &d,
                                DelayKind kind, const char *what)
{
    if (core_.engine().transmitPublic(d, kind))
        return;
    std::ostringstream os;
    os << what << " `" << toString(d.si) << "` (seq " << d.seq
       << ", pc " << d.pc
       << ") proceeded while its operands are non-public under "
       << core_.engine().name();
    violation("tainted-transmitter", os.str(), cycle, &d);
}

void
InvariantChecker::memAccess(uint64_t cycle, const DynInst &d)
{
    record(cycle, kEvMemAccess, d);
    checkTransmit(cycle, d, DelayKind::kMemAccess,
                  d.is_load ? "load" : "store");
}

void
InvariantChecker::gateOpened(uint64_t cycle, const DynInst &d,
                             DelayKind kind)
{
    record(cycle, kEvGate, d);
    // kMemAccess gate openings are immediately followed by the
    // memAccess hook, which performs the check; avoid double counting.
    if (kind == DelayKind::kBranchResolve)
        checkTransmit(cycle, d, kind, "branch resolution of");
    else if (kind == DelayKind::kMemOrderSquash)
        checkTransmit(cycle, d, kind, "memory-order squash of");
}

void
InvariantChecker::retired(uint64_t cycle, const DynInst &d)
{
    record(cycle, kEvRetired, d);
    last_commit_cycle_ = cycle;
    if (d.seq <= last_retired_seq_) {
        std::ostringstream os;
        os << "commit order broken: seq " << d.seq
           << " retired after seq " << last_retired_seq_;
        violation("commit-order", os.str(), cycle, &d);
    }
    last_retired_seq_ = std::max(last_retired_seq_, d.seq);
}

void
InvariantChecker::taintEvent(uint64_t cycle, TaintEvent ev,
                             const DynInst &d, uint8_t /*slot*/)
{
    record(cycle, kEvTaint, d);
    if (ev != TaintEvent::kTaintedAtRename)
        ++observed_untaints_;
}

void
InvariantChecker::checkStructure(uint64_t cycle)
{
    const CoreParams &p = core_.params();
    const auto &rob = core_.rob();

    if (rob.size() > p.rob_size)
        violation("rob-overflow",
                  "ROB holds " + std::to_string(rob.size()) +
                      " > capacity " + std::to_string(p.rob_size),
                  cycle, nullptr);
    SeqNum prev = 0;
    for (const DynInstPtr &d : rob) {
        if (d->seq <= prev) {
            violation("rob-order",
                      "ROB seq not strictly increasing at seq " +
                          std::to_string(d->seq),
                      cycle, d.get());
            break;
        }
        prev = d->seq;
        if (!core_.engine().taintStateConsistent(*d)) {
            std::ostringstream os;
            os << "engine taint slot of seq " << d->seq
               << " does not resolve to its instruction";
            violation("taint-index", os.str(), cycle, d.get());
        }
    }

    const auto in_rob = [&rob](const DynInstPtr &d) {
        const auto it = std::lower_bound(
            rob.begin(), rob.end(), d->seq,
            [](const DynInstPtr &e, SeqNum s) { return e->seq < s; });
        return it != rob.end() && (*it)->seq == d->seq &&
               it->get() == d.get();
    };
    const auto checkQueue = [&](const std::vector<DynInstPtr> &q,
                                unsigned cap, const char *name) {
        if (q.size() > cap)
            violation("lsq-overflow",
                      std::string(name) + " holds " +
                          std::to_string(q.size()) + " > capacity " +
                          std::to_string(cap),
                      cycle, nullptr);
        for (const DynInstPtr &d : q) {
            if (d->squashed || !in_rob(d)) {
                violation("lsq-orphan",
                          std::string(name) + " entry seq " +
                              std::to_string(d->seq) +
                              " is squashed or not in the ROB",
                          cycle, d.get());
                break;
            }
        }
    };
    checkQueue(core_.loadQueue(), p.lq_size, "LQ");
    checkQueue(core_.storeQueue(), p.sq_size, "SQ");

    const uint64_t occupancy =
        core_.engine().broadcastQueueOccupancy();
    const uint64_t bound = 3 * static_cast<uint64_t>(p.rob_size);
    if (occupancy > bound)
        violation("broadcast-unbounded",
                  "broadcast queue holds " +
                      std::to_string(occupancy) +
                      " flags > bound " + std::to_string(bound),
                  cycle, nullptr);
}

void
InvariantChecker::cycleEnd(uint64_t cycle)
{
    checkStructure(cycle);
    if (params_.watchdog_cycles != 0 && !core_.halted() &&
        cycle - last_commit_cycle_ > params_.watchdog_cycles) {
        livelocked_ = true;
        std::ostringstream os;
        os << "no instruction committed since cycle "
           << last_commit_cycle_ << " (watchdog "
           << params_.watchdog_cycles << " cycles)";
        violation("livelock", os.str(), cycle, nullptr);
        // Re-arm so a continuing run reports again only after
        // another full watchdog interval of silence.
        last_commit_cycle_ = cycle;
    }
}

void
InvariantChecker::finish(uint64_t final_cycle)
{
    const uint64_t counted =
        core_.engine().stats().get("untaint.events");
    if (counted != observed_untaints_) {
        std::ostringstream os;
        os << "taint conservation broken: engine counted " << counted
           << " untaint events, observer saw " << observed_untaints_;
        violation("untaint-conservation", os.str(), final_cycle,
                  nullptr);
    }
}

std::string
InvariantChecker::reportsJson() const
{
    JsonWriter jw;
    jw.beginArray();
    for (const DiagnosticReport &rep : reports_)
        rep.toJson(jw);
    jw.endArray();
    return jw.str();
}

DiagnosticReport
InvariantChecker::livelockReport(Core &core, uint64_t cycle)
{
    DiagnosticReport rep;
    rep.kind = "livelock";
    rep.message = "no instruction committed within the core retire "
                  "watchdog interval";
    rep.cycle = cycle;
    rep.rob = robDump(core);
    rep.engine_counters = core.engine().stats().counters();
    return rep;
}

} // namespace spt
