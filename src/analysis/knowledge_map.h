/**
 * @file
 * Knowledge-map emitter: lowers the `KnowledgeAnalysis` fixpoint
 * into the serialized `KnowledgeMap` artifact the dynamic engine
 * consumes (core/knowledge_map.h, DESIGN.md §13).
 *
 * Only kRobust facts are emitted. A per-pc mask bit is set for arch
 * register r iff r is kRobust-known in the in-state of that pc —
 * i.e. on *every* architectural path to the instruction, r's value
 * has been declassified by a program-order-older visibility-point
 * event by the time the instruction executes. kWindowed facts are
 * deliberately dropped: their justifier can be younger than the
 * value's producer, so they carry no retire-time guarantee and must
 * never relax the dynamic engine.
 */

#ifndef SPT_ANALYSIS_KNOWLEDGE_MAP_H
#define SPT_ANALYSIS_KNOWLEDGE_MAP_H

#include "analysis/knowledge_analysis.h"
#include "core/knowledge_map.h"

namespace spt {

/** Builds the map over @p analysis (itself built over a CFG whose
 *  program the map is fingerprinted against). @p vp_model stamps
 *  the header; the analysis's robust facts are VP-model-independent
 *  (they only use transmitter-operand declassifications valid under
 *  both models), so kAny is the natural stamp — a narrower one just
 *  restricts which runs accept the artifact. */
KnowledgeMap
emitKnowledgeMap(const KnowledgeAnalysis &analysis,
                 KnowledgeVpModel vp_model = KnowledgeVpModel::kAny);

} // namespace spt

#endif // SPT_ANALYSIS_KNOWLEDGE_MAP_H
