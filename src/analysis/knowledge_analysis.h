/**
 * @file
 * Forward knowledge-propagation dataflow analysis: an abstract
 * interpretation of the SPT untaint algebra (paper Sections 5-6)
 * over the program CFG. Where the dynamic engine tracks *taint*
 * (what the attacker must not learn), this pass tracks *knowledge*
 * (what the attacker provably learns on every path) — the
 * Declassiflow view of the same algebra. Both consume the shared
 * rule tables in `src/core/untaint_rules.h`, so the static and
 * dynamic semantics cannot drift.
 *
 * Lattice: each architectural register carries a knowledge level
 *
 *     kUnknown (0)  ⊑  kWindowed (1)  ⊑  kRobust (2)
 *
 * joined at merge points by min (knowledge must hold on *all*
 * incoming paths). kRobust facts are those whose justifying
 * declassifications are all performed by program-order-older
 * instructions reaching their visibility point: under
 * `UntaintMethod::kIdeal` the dynamic engine is guaranteed to have
 * untainted the value by the time the reader retires (VP grants
 * precede in-order retire). kWindowed facts additionally use the
 * backward inference rules and deferred forward re-evaluation
 * (Section 6.6), whose justifying declassifier can be *younger*
 * than the value's producer — the dynamic untaint then only lands
 * while the producer is still in flight, so the fact holds only
 * within a bounded instruction window and is never asserted against
 * the dynamic engine's retire-time state.
 *
 * The fixpoint is the MFP solution of the monotone framework
 * (optimistic ⊤ initialisation, descending worklist); MFP ⊑ MOP, so
 * every reported fact under-approximates true attacker knowledge —
 * the sound direction for the differential harness.
 */

#ifndef SPT_ANALYSIS_KNOWLEDGE_ANALYSIS_H
#define SPT_ANALYSIS_KNOWLEDGE_ANALYSIS_H

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.h"
#include "isa/instruction.h"

namespace spt {

enum class Knowledge : uint8_t {
    kUnknown = 0,
    kWindowed = 1,
    kRobust = 2,
};

const char *toString(Knowledge k);

/** The instruction that produced a register's current value, carried
 *  in the abstract state so the backward rules and deferred forward
 *  re-evaluation of Section 6.6 can fire when operands become known
 *  later. A record dies when any of its source registers is
 *  redefined (the rule would then relate stale values). */
struct DefRecord {
    bool valid = false;
    uint64_t pc = 0;
    Instruction si;

    bool operator==(const DefRecord &) const = default;
};

/** Abstract state: per-register knowledge level + def records. */
struct KnowledgeState {
    std::array<uint8_t, kNumArchRegs> level{}; ///< Knowledge values
    std::array<DefRecord, kNumArchRegs> def{};

    Knowledge of(unsigned reg) const
    {
        return static_cast<Knowledge>(level[reg]);
    }

    /** Lattice meet (min levels; def records kept only when
     *  structurally identical). Returns true iff *this changed. */
    bool meetWith(const KnowledgeState &o);
};

/** A static claim about one source-operand slot of an instruction:
 *  at the moment the instruction at `pc` reads slot `slot`, the
 *  value is known at `level` on every architectural path. */
struct SlotClaim {
    uint64_t pc = 0;
    uint8_t slot = 0;
    Knowledge level = Knowledge::kUnknown;
};

class KnowledgeAnalysis
{
  public:
    explicit KnowledgeAnalysis(const Cfg &cfg);

    const Cfg &cfg() const { return cfg_; }

    /** Abstract state just before the instruction at @p pc, or null
     *  if the pc is unreachable from the entry (no facts hold). */
    const KnowledgeState *inState(uint64_t pc) const;

    /** Claims for every source slot of the instruction at @p pc
     *  (empty for unreachable pcs). Slot order matches the dynamic
     *  engine (slot 0 = rs1, slot 1 = rs2). */
    std::vector<SlotClaim> claimsAt(uint64_t pc) const;

    /** All claims with level >= @p at_least, in pc order. */
    std::vector<SlotClaim> allClaims(Knowledge at_least) const;

    /** Applies one instruction's transfer function to @p st:
     *  visibility-point self-declassification, forward propagation
     *  to the destination, and the Section 6.6 inference closure.
     *  Exposed for tests and for the secret-flow lint. */
    static void transfer(const Instruction &si, uint64_t pc,
                         KnowledgeState &st);

  private:
    const Cfg &cfg_;
    std::vector<KnowledgeState> block_in_;
    std::vector<uint8_t> block_visited_;
    std::vector<KnowledgeState> pc_in_;
    std::vector<uint8_t> pc_valid_;

    void solve();
    KnowledgeState transferBlock(uint32_t block,
                                 bool record_states);
};

} // namespace spt

#endif // SPT_ANALYSIS_KNOWLEDGE_ANALYSIS_H
