/**
 * @file
 * Differential soundness harness: runs a program under the dynamic
 * `SptEngine` while checking every static knowledge claim from
 * `KnowledgeAnalysis` against the engine's taint state at retire.
 *
 * The contract (see knowledge_analysis.h): a kRobust claim says the
 * operand's justifying declassifications are all program-order-older
 * VP events, so under `UntaintMethod::kIdeal` the dynamic engine
 * must have untainted the operand by the time the reader commits. A
 * robust claim the engine denies is a bug in one of the two sides —
 * the harness reports it like an `InferabilityAuditor` violation.
 * kWindowed claims carry no retire-time guarantee (their untaint may
 * land only while the producer is in flight); their denial rate is
 * reported as a precision/timing gap metric, never asserted.
 */

#ifndef SPT_ANALYSIS_DIFFERENTIAL_H
#define SPT_ANALYSIS_DIFFERENTIAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/knowledge_analysis.h"
#include "core/spt_engine.h"
#include "isa/program_fuzzer.h"
#include "uarch/types.h"

namespace spt {

struct DifferentialConfig {
    AttackModel attack_model = AttackModel::kSpectre;
    ShadowKind shadow = ShadowKind::kShadowMem;
    uint64_t max_cycles = 1'000'000;
    /** Worker threads for runDifferentialSweep (0 = SPT_JOBS env,
     *  then hardware_concurrency; see common/parallel.h). Each seed
     *  gets its own fuzzer, analysis, and core, so results are
     *  independent of the worker count. */
    unsigned jobs = 0;
};

struct DifferentialResult {
    bool halted = false;
    uint64_t robust_checked = 0;
    uint64_t robust_denied = 0; ///< soundness violations; must be 0
    uint64_t windowed_checked = 0;
    uint64_t windowed_denied = 0; ///< timing-gap metric, not a bug
    std::vector<std::string> log; ///< one line per robust denial

    double windowedDenialRate() const
    {
        return windowed_checked == 0
                   ? 0.0
                   : static_cast<double>(windowed_denied) /
                         static_cast<double>(windowed_checked);
    }
};

/** Runs @p program to completion on the out-of-order core with an
 *  ideal-untaint SptEngine, checking @p analysis's claims at every
 *  commit. @p analysis must have been built over the same program. */
DifferentialResult runDifferential(const Program &program,
                                   const KnowledgeAnalysis &analysis,
                                   const DifferentialConfig &config);

/** Aggregate of a fuzzed differential campaign. `per_program[i]`
 *  is the result for seed `first_seed + i` regardless of worker
 *  count or completion order. */
struct DifferentialSweepResult {
    std::vector<DifferentialResult> per_program;
    uint64_t programs = 0;
    uint64_t robust_checked = 0;
    uint64_t robust_denied = 0;
    uint64_t windowed_checked = 0;
    uint64_t windowed_denied = 0;

    double windowedDenialRate() const
    {
        return windowed_checked == 0
                   ? 0.0
                   : static_cast<double>(windowed_denied) /
                         static_cast<double>(windowed_checked);
    }
};

/** Fuzzes `count` programs (seeds first_seed .. first_seed+count-1,
 *  each program's seed fixed independently of scheduling), builds
 *  the static knowledge analysis for each, and runs the dynamic
 *  check on `config.jobs` worker threads. */
DifferentialSweepResult
runDifferentialSweep(uint64_t first_seed, unsigned count,
                     const FuzzConfig &fuzz,
                     const DifferentialConfig &config);

// --------------------------------------------------------------------
// Knowledge-map soundness gate (DESIGN.md §13)
// --------------------------------------------------------------------

class KnowledgeMap;

struct MapDifferentialConfig {
    AttackModel attack_model = AttackModel::kSpectre;
    ShadowKind shadow = ShadowKind::kShadowMem;
    /** Untaint method of the relaxed/vanilla engine pair (the
     *  reference checker always runs kIdeal). */
    UntaintMethod method = UntaintMethod::kBackward;
    unsigned broadcast_width = 3;
    uint64_t max_cycles = 1'000'000;
    unsigned jobs = 0; ///< for runMapDifferentialSweep (see above)
};

/** Verdict of one program's three-way map check:
 *   (a) reference: an ideal-untaint CheckingEngine validates every
 *       map fact (each source operand the map marks robust at its
 *       pc) against the unrelaxed dynamic taint state at commit —
 *       a fact the engine retires tainted is a hard denial;
 *   (b) relaxed:  SPT with the map installed;
 *   (c) vanilla:  the identical SPT config without the map.
 *  (b) vs (c) must agree on the final architectural register file
 *  (taint only defers timing, never changes values); the relaxed
 *  run's knowledge counters quantify how often the map fired. */
struct MapDifferentialResult {
    bool halted = false;          ///< all three runs halted
    uint64_t map_facts = 0;       ///< robust facts in the map
    uint64_t robust_checked = 0;  ///< (a) facts checked at retire
    uint64_t robust_denied = 0;   ///< (a) hard denials; must be 0
    bool arch_divergence = false; ///< (b) vs (c) mismatch
    uint64_t precleared_ops = 0;  ///< (b) knowledge.precleared_ops
    uint64_t map_lookups = 0;     ///< (b) knowledge.map_lookups
    uint64_t cycles_relaxed = 0;  ///< (b) total cycles
    uint64_t cycles_vanilla = 0;  ///< (c) total cycles
    std::vector<std::string> log; ///< one line per denial/divergence
};

/** Runs the three-way check. @p map must have been emitted over
 *  @p program (fingerprint-validated). */
MapDifferentialResult
runMapDifferential(const Program &program, const KnowledgeMap &map,
                   const MapDifferentialConfig &config);

/** Aggregate of a fuzzed map campaign; `per_program[i]` is seed
 *  `first_seed + i` for any worker count. */
struct MapDifferentialSweepResult {
    std::vector<MapDifferentialResult> per_program;
    uint64_t programs = 0;
    uint64_t map_facts = 0;
    uint64_t robust_checked = 0;
    uint64_t robust_denied = 0;
    uint64_t arch_divergences = 0;
    uint64_t precleared_ops = 0;
    uint64_t unhalted = 0;
};

/** Fuzzes `count` programs, emits a knowledge map for each, and
 *  runs the three-way check per seed on `config.jobs` workers. */
MapDifferentialSweepResult
runMapDifferentialSweep(uint64_t first_seed, unsigned count,
                        const FuzzConfig &fuzz,
                        const MapDifferentialConfig &config);

} // namespace spt

#endif // SPT_ANALYSIS_DIFFERENTIAL_H
