#include "analysis/cfg.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/logging.h"
#include "isa/introspect.h"

namespace spt {

Cfg::Cfg(const Program &program) : program_(program)
{
    SPT_ASSERT(program.size() > 0, "Cfg over an empty program");
    buildBlocks();
    buildEdges();
    computeDominators();
    findLoops();
}

void
Cfg::buildBlocks()
{
    const auto &code = program_.code();
    std::set<uint64_t> leaders;
    leaders.insert(program_.entry());
    for (uint64_t pc = 0; pc < code.size(); ++pc) {
        const Instruction &si = code[pc];
        if (auto tgt = directTarget(si, pc); tgt && program_.validPc(*tgt))
            leaders.insert(*tgt);
        if (isBlockTerminator(si.op) && program_.validPc(pc + 1))
            leaders.insert(pc + 1);
    }
    // Any symbol naming a text pc could be a JALR target (loaded via
    // `li rX, symbol`); force those pcs to be leaders so the
    // "unresolved JALR -> all leaders" edge policy covers them.
    for (const auto &[name, value] : program_.symbols())
        if (program_.validPc(value))
            leaders.insert(value);

    block_of_.assign(code.size(), 0);
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        auto next = std::next(it);
        BasicBlock bb;
        bb.first = *it;
        bb.last = (next == leaders.end() ? code.size() : *next) - 1;
        const uint32_t id = static_cast<uint32_t>(blocks_.size());
        for (uint64_t pc = bb.first; pc <= bb.last; ++pc)
            block_of_[pc] = id;
        blocks_.push_back(std::move(bb));
    }
    entry_block_ = block_of_[program_.entry()];
}

void
Cfg::buildEdges()
{
    const auto &code = program_.code();

    // ra-discipline check: x1 written only by JAL link values.
    ra_disciplined_ = true;
    for (const Instruction &si : code)
        if (writesReg(si) && si.rd == kRegRa && si.op != Opcode::kJal)
            ra_disciplined_ = false;

    // Return sites: pc+1 of every link-producing JAL.
    std::vector<uint32_t> return_sites;
    for (uint64_t pc = 0; pc < code.size(); ++pc)
        if (code[pc].op == Opcode::kJal && code[pc].rd != kRegZero &&
            program_.validPc(pc + 1))
            return_sites.push_back(block_of_[pc + 1]);

    auto addEdge = [this](uint32_t from, uint32_t to) {
        auto &succs = blocks_[from].succs;
        if (std::find(succs.begin(), succs.end(), to) == succs.end()) {
            succs.push_back(to);
            blocks_[to].preds.push_back(from);
        }
    };

    for (uint32_t id = 0; id < blocks_.size(); ++id) {
        const uint64_t last = blocks_[id].last;
        const Instruction &si = code[last];
        const bool ret_like = si.op == Opcode::kJalr &&
                              si.rs1 == kRegRa && si.imm == 0 &&
                              ra_disciplined_;
        if (si.op == Opcode::kJalr) {
            if (ret_like) {
                for (uint32_t site : return_sites)
                    addEdge(id, site);
            } else {
                for (uint32_t tgt = 0; tgt < blocks_.size(); ++tgt)
                    addEdge(id, tgt);
            }
            continue;
        }
        if (auto tgt = directTarget(si, last); tgt && program_.validPc(*tgt))
            addEdge(id, block_of_[*tgt]);
        if (canFallThrough(si.op) && program_.validPc(last + 1))
            addEdge(id, block_of_[last + 1]);
    }

    // Reachability from the entry block.
    std::deque<uint32_t> work{entry_block_};
    blocks_[entry_block_].reachable = true;
    while (!work.empty()) {
        const uint32_t id = work.front();
        work.pop_front();
        for (uint32_t s : blocks_[id].succs)
            if (!blocks_[s].reachable) {
                blocks_[s].reachable = true;
                work.push_back(s);
            }
    }
}

void
Cfg::computeDominators()
{
    // Iterative dataflow formulation (Cooper/Harvey/Kennedy) over a
    // reverse-postorder traversal from the entry block.
    const uint32_t n = static_cast<uint32_t>(blocks_.size());
    constexpr uint32_t kUndef = UINT32_MAX;
    std::vector<uint32_t> idom(n, kUndef);
    idom[entry_block_] = entry_block_;

    std::vector<uint32_t> rpo;
    rpo.reserve(n);
    {
        std::vector<uint8_t> state(n, 0); // 0=new 1=open 2=done
        std::vector<std::pair<uint32_t, size_t>> stack;
        stack.emplace_back(entry_block_, 0);
        state[entry_block_] = 1;
        while (!stack.empty()) {
            auto &[id, next] = stack.back();
            if (next < blocks_[id].succs.size()) {
                const uint32_t s = blocks_[id].succs[next++];
                if (state[s] == 0) {
                    state[s] = 1;
                    stack.emplace_back(s, 0);
                }
            } else {
                state[id] = 2;
                rpo.push_back(id);
                stack.pop_back();
            }
        }
        std::reverse(rpo.begin(), rpo.end());
    }

    std::vector<uint32_t> rpo_index(n, kUndef);
    for (uint32_t i = 0; i < rpo.size(); ++i)
        rpo_index[rpo[i]] = i;

    auto intersect = [&](uint32_t a, uint32_t b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = idom[a];
            while (rpo_index[b] > rpo_index[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t id : rpo) {
            if (id == entry_block_)
                continue;
            uint32_t new_idom = kUndef;
            for (uint32_t p : blocks_[id].preds) {
                if (idom[p] == kUndef)
                    continue; // not yet processed / unreachable
                new_idom = new_idom == kUndef ? p
                                              : intersect(p, new_idom);
            }
            if (new_idom != kUndef && idom[id] != new_idom) {
                idom[id] = new_idom;
                changed = true;
            }
        }
    }

    for (uint32_t id = 0; id < n; ++id)
        blocks_[id].idom = idom[id] == kUndef ? id : idom[id];
}

bool
Cfg::dominates(uint32_t a, uint32_t b) const
{
    // Walk b's idom chain up to the entry block.
    uint32_t cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (!blocks_[cur].reachable || cur == entry_block_)
            return false;
        const uint32_t up = blocks_[cur].idom;
        if (up == cur)
            return false;
        cur = up;
    }
}

void
Cfg::findLoops()
{
    for (uint32_t src = 0; src < blocks_.size(); ++src) {
        if (!blocks_[src].reachable)
            continue;
        for (uint32_t header : blocks_[src].succs) {
            if (!dominates(header, src))
                continue;
            NaturalLoop loop;
            loop.header = header;
            loop.back_edge_src = src;
            std::set<uint32_t> body{header};
            std::deque<uint32_t> work;
            if (body.insert(src).second || src != header)
                work.push_back(src);
            while (!work.empty()) {
                const uint32_t id = work.front();
                work.pop_front();
                for (uint32_t p : blocks_[id].preds)
                    if (body.insert(p).second)
                        work.push_back(p);
            }
            loop.body.assign(body.begin(), body.end());
            loops_.push_back(std::move(loop));
        }
    }
}

} // namespace spt
