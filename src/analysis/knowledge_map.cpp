#include "analysis/knowledge_map.h"

#include "isa/program.h"

namespace spt {

KnowledgeMap
emitKnowledgeMap(const KnowledgeAnalysis &analysis,
                 KnowledgeVpModel vp_model)
{
    const Program &program = analysis.cfg().program();
    std::vector<uint32_t> masks(program.size(), 0);
    for (uint64_t pc = 0; pc < program.size(); ++pc) {
        const KnowledgeState *st = analysis.inState(pc);
        if (!st)
            continue; // unreachable: no facts hold
        uint32_t mask = 0;
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            if (st->of(static_cast<uint8_t>(r)) ==
                Knowledge::kRobust)
                mask |= 1u << r;
        masks[pc] = mask;
    }
    return KnowledgeMap(KnowledgeMap::fingerprintOf(program),
                        vp_model, std::move(masks));
}

} // namespace spt
