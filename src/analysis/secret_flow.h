/**
 * @file
 * Constant-time leakage lint, Spectector-style: flags every
 * transmitter (load/store) whose address value, and every branch or
 * JALR whose predicate/target operand, may carry data derived from a
 * `.secret`-annotated input — architecturally, or transiently within
 * a configurable speculation window after a mispredictable control
 * transfer.
 *
 * Abstract domain: per-register { may-be-secret bit, constant value,
 * pointer base }, plus a global partition of data memory into regions
 * whose boundaries are the data-segment bounds, secret-range
 * endpoints, and every constant pointer base observed in the program.
 * Each region carries one may-hold-secret bit.
 *
 * Two passes:
 *  - Pass A (architectural): fixpoint over the full CFG (including
 *    the over-approximate JALR edges). A based pointer with unknown
 *    offset is *confined* to the data segment containing its base —
 *    the in-bounds behavior of architecturally executed code. Stores
 *    of secret data poison the regions they can reach (an outer
 *    fixpoint re-runs the pass until the region bits stabilize).
 *  - Pass B (speculative): every block is assumed reachable
 *    transiently from any mispredictable source (conditional branch
 *    or JALR), seeded with the join of the architectural states at
 *    all such sources and bounded by a speculation-window budget of
 *    W instructions. Based pointers are *unconfined* (out-of-bounds
 *    transient accesses, the Spectre v1 pattern) but region secrecy
 *    is read from Pass A — transient stores do not poison (their
 *    effects are squashed).
 *
 * A finding present only under Pass B is `transient_only`: safe on a
 * processor with SPT's protection scope, leaking on an unprotected
 * speculative core.
 */

#ifndef SPT_ANALYSIS_SECRET_FLOW_H
#define SPT_ANALYSIS_SECRET_FLOW_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "isa/instruction.h"

namespace spt {

enum class LintKind : uint8_t {
    kSecretAddress, ///< load/store address value may be secret
    kSecretBranch,  ///< branch predicate / JALR target may be secret
};

const char *toString(LintKind k);

struct LintFinding {
    LintKind kind = LintKind::kSecretAddress;
    uint64_t pc = 0;
    Instruction si;
    /** Only reachable with a secret operand transiently (Pass B). */
    bool transient_only = false;
    std::string detail;
};

struct LintOptions {
    /** Transient instruction budget past a mispredictable source. */
    unsigned speculation_window = 100;
};

class SecretFlowLint
{
  public:
    explicit SecretFlowLint(const Cfg &cfg, LintOptions opts = {});

    /** Findings in (pc, kind) order, deduplicated. Empty when the
     *  program declares no `.secret` ranges. */
    const std::vector<LintFinding> &findings() const
    {
        return findings_;
    }

  private:
    struct Impl;
    std::vector<LintFinding> findings_;
};

} // namespace spt

#endif // SPT_ANALYSIS_SECRET_FLOW_H
