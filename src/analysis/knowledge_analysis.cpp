#include "analysis/knowledge_analysis.h"

#include <deque>

#include "common/logging.h"
#include "core/untaint_rules.h"
#include "isa/introspect.h"

namespace spt {

namespace {

constexpr uint8_t kUnknown = 0;
constexpr uint8_t kWindowed = 1;
constexpr uint8_t kRobust = 2;

/** All-or-nothing taint mask for querying the shared rule tables at
 *  register granularity: a source known at >= @p threshold reads as
 *  fully untainted, anything else as fully tainted. */
TaintMask
maskAt(const KnowledgeState &st, uint8_t reg, uint8_t threshold)
{
    return st.level[reg] >= threshold ? TaintMask::none()
                                      : TaintMask::all();
}

void
raise(KnowledgeState &st, uint8_t reg, uint8_t level)
{
    if (reg != kRegZero && st.level[reg] < level)
        st.level[reg] = level;
}

/** Knowledge level of a non-load destination, per the shared forward
 *  rule: robust if the output is untainted given robust inputs,
 *  windowed if untainted given windowed inputs. */
uint8_t
forwardLevel(const Instruction &si, const KnowledgeState &st)
{
    const SrcRegs s = srcRegs(si);
    for (uint8_t threshold : {kRobust, kWindowed}) {
        const TaintMask a = s.count >= 1
                                ? maskAt(st, s.reg[0], threshold)
                                : TaintMask::none();
        const TaintMask b = s.count >= 2
                                ? maskAt(st, s.reg[1], threshold)
                                : TaintMask::none();
        if (propagateForward(si.op, a, b).nothing())
            return threshold;
    }
    return kUnknown;
}

/** Whether the value produced by @p si is worth a def record: the
 *  Section 6.6 rules (and deferred forward re-evaluation) can only
 *  relate register sources to a register destination. Loads are
 *  excluded (their data comes from memory, which this pass does not
 *  model), as are immediate-class ops (already public) and
 *  self-referential defs (the rule would relate the overwritten
 *  value). */
bool
recordableDef(const Instruction &si)
{
    const OpTraits &t = opTraits(si.op);
    if (!t.has_dest || si.rd == kRegZero || t.is_load)
        return false;
    const UntaintRule &r = untaintRule(si.op);
    if (r.output_public || r.num_srcs == 0)
        return false;
    const SrcRegs s = srcRegs(si);
    for (uint8_t i = 0; i < s.count; ++i)
        if (s.reg[i] == si.rd)
            return false; // self-referential
    return true;
}

/**
 * Fires the Section 6.6 inference rules to a local fixpoint:
 *  - deferred forward: once every source of a recorded def is
 *    known, the destination value is inferable;
 *  - backward: once a recorded def's destination is known, the
 *    shared backward rule may make sources inferable.
 * Both directions involve a declassifier that can be younger than
 * the producing instruction, so every fact derived here is capped
 * at kWindowed (see the header's robust/windowed split).
 */
void
inferenceClosure(KnowledgeState &st)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (unsigned r = 0; r < kNumArchRegs; ++r) {
            const DefRecord &d = st.def[r];
            if (!d.valid)
                continue;
            const Instruction &si = d.si;
            const SrcRegs s = srcRegs(si);
            // Deferred forward re-evaluation.
            if (st.level[r] < kWindowed) {
                const TaintMask a =
                    s.count >= 1 ? maskAt(st, s.reg[0], kWindowed)
                                 : TaintMask::none();
                const TaintMask b =
                    s.count >= 2 ? maskAt(st, s.reg[1], kWindowed)
                                 : TaintMask::none();
                if (propagateForward(si.op, a, b).nothing()) {
                    st.level[r] = kWindowed;
                    changed = true;
                }
            }
            // Backward inference from a known destination.
            if (st.level[r] >= kWindowed) {
                const TaintMask src0 =
                    s.count >= 1 ? maskAt(st, s.reg[0], kWindowed)
                                 : TaintMask::none();
                const TaintMask src1 =
                    s.count >= 2 ? maskAt(st, s.reg[1], kWindowed)
                                 : TaintMask::none();
                const BackwardUntaint bu = propagateBackward(
                    si.op, src0, src1, TaintMask::none());
                if (bu.untaint_src0 &&
                    st.level[s.reg[0]] < kWindowed) {
                    raise(st, s.reg[0], kWindowed);
                    changed = true;
                }
                if (bu.untaint_src1 &&
                    st.level[s.reg[1]] < kWindowed) {
                    raise(st, s.reg[1], kWindowed);
                    changed = true;
                }
            }
        }
    }
}

} // namespace

const char *
toString(Knowledge k)
{
    switch (k) {
      case Knowledge::kUnknown:
        return "unknown";
      case Knowledge::kWindowed:
        return "windowed";
      case Knowledge::kRobust:
        return "robust";
    }
    return "?";
}

bool
KnowledgeState::meetWith(const KnowledgeState &o)
{
    bool changed = false;
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        if (o.level[r] < level[r]) {
            level[r] = o.level[r];
            changed = true;
        }
        if (def[r].valid && !(def[r] == o.def[r])) {
            def[r].valid = false;
            changed = true;
        }
    }
    return changed;
}

void
KnowledgeAnalysis::transfer(const Instruction &si, uint64_t pc,
                            KnowledgeState &st)
{
    const OpTraits &t = opTraits(si.op);

    // Visibility-point self-declassification: exactly the operands
    // the dynamic engine's declassify phase releases (transmitter
    // addresses, branch/JALR inputs). These declassifiers are older
    // than every later reader, hence robust.
    if (t.is_load || t.is_store || si.op == Opcode::kJalr)
        raise(st, si.rs1, kRobust);
    if (t.is_cond_branch) {
        raise(st, si.rs1, kRobust);
        raise(st, si.rs2, kRobust);
    }
    inferenceClosure(st);

    if (writesReg(si)) {
        // Kill records whose rule inputs this write invalidates.
        for (unsigned r = 0; r < kNumArchRegs; ++r) {
            DefRecord &d = st.def[r];
            if (!d.valid)
                continue;
            const SrcRegs s = srcRegs(d.si);
            for (uint8_t i = 0; i < s.count; ++i)
                if (s.reg[i] == si.rd)
                    d.valid = false;
        }
        st.level[si.rd] =
            t.is_load ? kUnknown : forwardLevel(si, st);
        st.def[si.rd] = recordableDef(si)
                            ? DefRecord{true, pc, si}
                            : DefRecord{};
        inferenceClosure(st);
    }
}

KnowledgeAnalysis::KnowledgeAnalysis(const Cfg &cfg) : cfg_(cfg)
{
    block_in_.resize(cfg_.blocks().size());
    block_visited_.assign(cfg_.blocks().size(), 0);
    pc_in_.resize(cfg_.program().size());
    pc_valid_.assign(cfg_.program().size(), 0);
    solve();
}

void
KnowledgeAnalysis::solve()
{
    KnowledgeState entry;
    entry.level[kRegZero] = kRobust;
    block_in_[cfg_.entryBlock()] = entry;
    block_visited_[cfg_.entryBlock()] = 1;

    std::deque<uint32_t> work{cfg_.entryBlock()};
    std::vector<uint8_t> queued(cfg_.blocks().size(), 0);
    queued[cfg_.entryBlock()] = 1;
    while (!work.empty()) {
        const uint32_t id = work.front();
        work.pop_front();
        queued[id] = 0;
        const KnowledgeState out = transferBlock(id, false);
        for (uint32_t s : cfg_.blocks()[id].succs) {
            bool changed;
            if (!block_visited_[s]) {
                block_in_[s] = out;
                block_visited_[s] = 1;
                changed = true;
            } else {
                changed = block_in_[s].meetWith(out);
            }
            if (changed && !queued[s]) {
                queued[s] = 1;
                work.push_back(s);
            }
        }
    }

    for (uint32_t id = 0; id < cfg_.blocks().size(); ++id)
        if (block_visited_[id])
            transferBlock(id, true);
}

KnowledgeState
KnowledgeAnalysis::transferBlock(uint32_t block, bool record_states)
{
    const BasicBlock &bb = cfg_.blocks()[block];
    KnowledgeState st = block_in_[block];
    for (uint64_t pc = bb.first; pc <= bb.last; ++pc) {
        if (record_states) {
            pc_in_[pc] = st;
            pc_valid_[pc] = 1;
        }
        transfer(cfg_.program().at(pc), pc, st);
    }
    return st;
}

const KnowledgeState *
KnowledgeAnalysis::inState(uint64_t pc) const
{
    SPT_ASSERT(cfg_.program().validPc(pc),
               "inState: pc out of range: " << pc);
    return pc_valid_[pc] ? &pc_in_[pc] : nullptr;
}

std::vector<SlotClaim>
KnowledgeAnalysis::claimsAt(uint64_t pc) const
{
    std::vector<SlotClaim> claims;
    const KnowledgeState *st = inState(pc);
    if (!st)
        return claims;
    const SrcRegs s = srcRegs(cfg_.program().at(pc));
    for (uint8_t i = 0; i < s.count; ++i)
        claims.push_back({pc, i, st->of(s.reg[i])});
    return claims;
}

std::vector<SlotClaim>
KnowledgeAnalysis::allClaims(Knowledge at_least) const
{
    std::vector<SlotClaim> claims;
    for (uint64_t pc = 0; pc < cfg_.program().size(); ++pc)
        for (const SlotClaim &c : claimsAt(pc))
            if (c.level >= at_least)
                claims.push_back(c);
    return claims;
}

} // namespace spt
