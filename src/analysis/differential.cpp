#include "analysis/differential.h"

#include <memory>
#include <sstream>
#include <unordered_map>

#include "analysis/cfg.h"
#include "analysis/knowledge_map.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "isa/introspect.h"
#include "uarch/core.h"

namespace spt {

namespace {

/** An SptEngine that validates static claims at commit time, before
 *  the base class retires (and frees) the instruction's taint slot. */
class CheckingEngine : public SptEngine
{
  public:
    CheckingEngine(const SptConfig &cfg,
                   std::unordered_map<uint64_t, std::vector<SlotClaim>>
                       claims,
                   DifferentialResult &result)
        : SptEngine(cfg), claims_(std::move(claims)), result_(result)
    {
    }

    void
    onRetire(const DynInst &d) override
    {
        if (auto it = claims_.find(d.pc); it != claims_.end())
            check(d, it->second);
        SptEngine::onRetire(d);
    }

  private:
    void
    check(const DynInst &d, const std::vector<SlotClaim> &claims)
    {
        const InstTaint *taint = instTaint(d.seq);
        if (!taint)
            return;
        for (const SlotClaim &c : claims) {
            const bool untainted = taint->src[c.slot].nothing();
            if (c.level == Knowledge::kRobust) {
                ++result_.robust_checked;
                if (!untainted) {
                    ++result_.robust_denied;
                    if (result_.log.size() < 32) {
                        std::ostringstream os;
                        os << "pc " << d.pc << " seq " << d.seq
                           << " `" << toString(d.si) << "` slot "
                           << unsigned(c.slot)
                           << ": static claims robust knowledge, "
                              "engine retires it tainted";
                        result_.log.push_back(os.str());
                    }
                }
            } else if (c.level == Knowledge::kWindowed) {
                ++result_.windowed_checked;
                if (!untainted)
                    ++result_.windowed_denied;
            }
        }
    }

    std::unordered_map<uint64_t, std::vector<SlotClaim>> claims_;
    DifferentialResult &result_;
};

} // namespace

DifferentialResult
runDifferential(const Program &program,
                const KnowledgeAnalysis &analysis,
                const DifferentialConfig &config)
{
    SPT_ASSERT(program.size() == analysis.cfg().program().size(),
               "analysis was built over a different program");

    std::unordered_map<uint64_t, std::vector<SlotClaim>> claims;
    for (uint64_t pc = 0; pc < program.size(); ++pc) {
        std::vector<SlotClaim> at = analysis.claimsAt(pc);
        std::erase_if(at, [](const SlotClaim &c) {
            return c.level == Knowledge::kUnknown;
        });
        if (!at.empty())
            claims.emplace(pc, std::move(at));
    }

    DifferentialResult result;
    SptConfig spt;
    spt.method = UntaintMethod::kIdeal;
    spt.shadow = config.shadow;
    auto engine =
        std::make_unique<CheckingEngine>(spt, std::move(claims),
                                         result);
    CoreParams cp;
    cp.attack_model = config.attack_model;
    cp.perfect_icache = true;
    Core core(program, cp, MemorySystemParams{}, std::move(engine));
    while (!core.halted() && core.cycle() < config.max_cycles)
        core.tick();
    result.halted = core.halted();
    return result;
}

MapDifferentialResult
runMapDifferential(const Program &program, const KnowledgeMap &map,
                   const MapDifferentialConfig &config)
{
    map.validateFor(program, config.attack_model);

    MapDifferentialResult result;
    result.map_facts = map.totalFacts();

    // (a) Reference: validate every map fact against the unrelaxed
    // ideal-untaint engine's taint state at commit. This covers a
    // superset of the preclears the relaxed engine can perform (the
    // runtime additionally requires the armed bit), so a clean pass
    // here bounds the relaxation from above.
    std::unordered_map<uint64_t, std::vector<SlotClaim>> claims;
    for (uint64_t pc = 0; pc < program.size(); ++pc) {
        const uint32_t robust = map.robustRegsAt(pc);
        if (robust == 0)
            continue;
        const SrcRegs s = srcRegs(program.at(pc));
        std::vector<SlotClaim> at;
        for (uint8_t i = 0; i < s.count; ++i)
            if (robust >> s.reg[i] & 1)
                at.push_back({pc, i, Knowledge::kRobust});
        if (!at.empty())
            claims.emplace(pc, std::move(at));
    }
    DifferentialResult ref;
    {
        SptConfig spt;
        spt.method = UntaintMethod::kIdeal;
        spt.shadow = config.shadow;
        auto engine = std::make_unique<CheckingEngine>(
            spt, std::move(claims), ref);
        CoreParams cp;
        cp.attack_model = config.attack_model;
        cp.perfect_icache = true;
        Core core(program, cp, MemorySystemParams{},
                  std::move(engine));
        while (!core.halted() && core.cycle() < config.max_cycles)
            core.tick();
        result.halted = core.halted();
    }
    result.robust_checked = ref.robust_checked;
    result.robust_denied = ref.robust_denied;
    result.log = std::move(ref.log);

    // (b)+(c) Relaxed vs vanilla: identical configs except for the
    // map; the final architectural state must agree (taint defers
    // timing, never values).
    auto run = [&](const KnowledgeMap *m, uint64_t &cycles,
                   std::array<uint64_t, kNumArchRegs> &regs) {
        SptConfig spt;
        spt.method = config.method;
        spt.shadow = config.shadow;
        spt.broadcast_width = config.broadcast_width;
        spt.knowledge_map = m;
        auto engine = std::make_unique<SptEngine>(spt);
        SptEngine *raw = engine.get();
        CoreParams cp;
        cp.attack_model = config.attack_model;
        cp.perfect_icache = true;
        Core core(program, cp, MemorySystemParams{},
                  std::move(engine));
        while (!core.halted() && core.cycle() < config.max_cycles)
            core.tick();
        result.halted = result.halted && core.halted();
        cycles = core.cycle();
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            regs[r] = core.archReg(r);
        if (m) {
            result.precleared_ops =
                raw->stats().get("knowledge.precleared_ops");
            result.map_lookups =
                raw->stats().get("knowledge.map_lookups");
        }
    };
    std::array<uint64_t, kNumArchRegs> relaxed_regs{};
    std::array<uint64_t, kNumArchRegs> vanilla_regs{};
    run(&map, result.cycles_relaxed, relaxed_regs);
    run(nullptr, result.cycles_vanilla, vanilla_regs);
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        if (relaxed_regs[r] == vanilla_regs[r])
            continue;
        result.arch_divergence = true;
        if (result.log.size() < 32) {
            std::ostringstream os;
            os << "arch divergence at x" << r << ": relaxed "
               << relaxed_regs[r] << " vanilla " << vanilla_regs[r];
            result.log.push_back(os.str());
        }
    }
    return result;
}

MapDifferentialSweepResult
runMapDifferentialSweep(uint64_t first_seed, unsigned count,
                        const FuzzConfig &fuzz,
                        const MapDifferentialConfig &config)
{
    MapDifferentialSweepResult sweep;
    sweep.per_program.resize(count);
    // Slot-indexed as in runDifferentialSweep: each seed's program,
    // analysis, map, and cores are worker-local, so the assembled
    // vector is identical for any jobs value.
    parallelFor(count, config.jobs, [&](std::size_t i) {
        const Program program = fuzzProgram(first_seed + i, fuzz);
        const Cfg cfg(program);
        const KnowledgeAnalysis analysis(cfg);
        const KnowledgeMap map = emitKnowledgeMap(analysis);
        sweep.per_program[i] =
            runMapDifferential(program, map, config);
    });
    for (const MapDifferentialResult &res : sweep.per_program) {
        ++sweep.programs;
        sweep.map_facts += res.map_facts;
        sweep.robust_checked += res.robust_checked;
        sweep.robust_denied += res.robust_denied;
        sweep.arch_divergences += res.arch_divergence;
        sweep.precleared_ops += res.precleared_ops;
        sweep.unhalted += !res.halted;
    }
    return sweep;
}

DifferentialSweepResult
runDifferentialSweep(uint64_t first_seed, unsigned count,
                     const FuzzConfig &fuzz,
                     const DifferentialConfig &config)
{
    DifferentialSweepResult sweep;
    sweep.per_program.resize(count);
    // Each index owns its slot: fuzzer, CFG, analysis, and core are
    // all local to the worker, so the assembled vector is identical
    // for any jobs value.
    parallelFor(count, config.jobs, [&](std::size_t i) {
        const Program program =
            fuzzProgram(first_seed + i, fuzz);
        const Cfg cfg(program);
        const KnowledgeAnalysis analysis(cfg);
        sweep.per_program[i] =
            runDifferential(program, analysis, config);
    });
    for (const DifferentialResult &res : sweep.per_program) {
        ++sweep.programs;
        sweep.robust_checked += res.robust_checked;
        sweep.robust_denied += res.robust_denied;
        sweep.windowed_checked += res.windowed_checked;
        sweep.windowed_denied += res.windowed_denied;
    }
    return sweep;
}

} // namespace spt
