#include "analysis/differential.h"

#include <memory>
#include <sstream>
#include <unordered_map>

#include "analysis/cfg.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "uarch/core.h"

namespace spt {

namespace {

/** An SptEngine that validates static claims at commit time, before
 *  the base class retires (and frees) the instruction's taint slot. */
class CheckingEngine : public SptEngine
{
  public:
    CheckingEngine(const SptConfig &cfg,
                   std::unordered_map<uint64_t, std::vector<SlotClaim>>
                       claims,
                   DifferentialResult &result)
        : SptEngine(cfg), claims_(std::move(claims)), result_(result)
    {
    }

    void
    onRetire(const DynInst &d) override
    {
        if (auto it = claims_.find(d.pc); it != claims_.end())
            check(d, it->second);
        SptEngine::onRetire(d);
    }

  private:
    void
    check(const DynInst &d, const std::vector<SlotClaim> &claims)
    {
        const InstTaint *taint = instTaint(d.seq);
        if (!taint)
            return;
        for (const SlotClaim &c : claims) {
            const bool untainted = taint->src[c.slot].nothing();
            if (c.level == Knowledge::kRobust) {
                ++result_.robust_checked;
                if (!untainted) {
                    ++result_.robust_denied;
                    if (result_.log.size() < 32) {
                        std::ostringstream os;
                        os << "pc " << d.pc << " seq " << d.seq
                           << " `" << toString(d.si) << "` slot "
                           << unsigned(c.slot)
                           << ": static claims robust knowledge, "
                              "engine retires it tainted";
                        result_.log.push_back(os.str());
                    }
                }
            } else if (c.level == Knowledge::kWindowed) {
                ++result_.windowed_checked;
                if (!untainted)
                    ++result_.windowed_denied;
            }
        }
    }

    std::unordered_map<uint64_t, std::vector<SlotClaim>> claims_;
    DifferentialResult &result_;
};

} // namespace

DifferentialResult
runDifferential(const Program &program,
                const KnowledgeAnalysis &analysis,
                const DifferentialConfig &config)
{
    SPT_ASSERT(program.size() == analysis.cfg().program().size(),
               "analysis was built over a different program");

    std::unordered_map<uint64_t, std::vector<SlotClaim>> claims;
    for (uint64_t pc = 0; pc < program.size(); ++pc) {
        std::vector<SlotClaim> at = analysis.claimsAt(pc);
        std::erase_if(at, [](const SlotClaim &c) {
            return c.level == Knowledge::kUnknown;
        });
        if (!at.empty())
            claims.emplace(pc, std::move(at));
    }

    DifferentialResult result;
    SptConfig spt;
    spt.method = UntaintMethod::kIdeal;
    spt.shadow = config.shadow;
    auto engine =
        std::make_unique<CheckingEngine>(spt, std::move(claims),
                                         result);
    CoreParams cp;
    cp.attack_model = config.attack_model;
    cp.perfect_icache = true;
    Core core(program, cp, MemorySystemParams{}, std::move(engine));
    while (!core.halted() && core.cycle() < config.max_cycles)
        core.tick();
    result.halted = core.halted();
    return result;
}

DifferentialSweepResult
runDifferentialSweep(uint64_t first_seed, unsigned count,
                     const FuzzConfig &fuzz,
                     const DifferentialConfig &config)
{
    DifferentialSweepResult sweep;
    sweep.per_program.resize(count);
    // Each index owns its slot: fuzzer, CFG, analysis, and core are
    // all local to the worker, so the assembled vector is identical
    // for any jobs value.
    parallelFor(count, config.jobs, [&](std::size_t i) {
        const Program program =
            fuzzProgram(first_seed + i, fuzz);
        const Cfg cfg(program);
        const KnowledgeAnalysis analysis(cfg);
        sweep.per_program[i] =
            runDifferential(program, analysis, config);
    });
    for (const DifferentialResult &res : sweep.per_program) {
        ++sweep.programs;
        sweep.robust_checked += res.robust_checked;
        sweep.robust_denied += res.robust_denied;
        sweep.windowed_checked += res.windowed_checked;
        sweep.windowed_denied += res.windowed_denied;
    }
    return sweep;
}

} // namespace spt
