/**
 * @file
 * Control-flow graph over an assembled TRISC Program: basic blocks,
 * successor/predecessor edges, immediate dominators, and natural
 * loops. This is the substrate for the static knowledge-propagation
 * pass and the constant-time lint (Declassiflow/Spectector-style
 * analyses run over exactly this graph).
 *
 * Edge policy (must over-approximate every architectural control
 * transfer, or the analyses built on top become unsound):
 *  - conditional branch: taken target and fall-through;
 *  - JAL: the direct target;
 *  - JALR `ret` idiom (`jalr x0, ra, 0`), *if* the program is
 *    ra-disciplined (x1 is only ever written by JAL link values):
 *    every instruction following a JAL-with-link — i.e. all return
 *    sites. ra-discipline guarantees ra always holds some JAL's
 *    link value, so this covers every architectural target;
 *  - any other JALR: all block leaders (the target register may
 *    hold any code address a symbol or link value can reach; every
 *    symbol that names a text pc is forced to be a leader so the
 *    over-approximation stays sound for symbol-derived targets).
 *    A computed target that lands mid-block with no symbol naming
 *    it is outside this over-approximation — none of the bundled
 *    programs or the fuzzer generate such code;
 *  - HALT: no successors.
 */

#ifndef SPT_ANALYSIS_CFG_H
#define SPT_ANALYSIS_CFG_H

#include <cstdint>
#include <vector>

#include "isa/program.h"

namespace spt {

struct BasicBlock {
    uint64_t first = 0; ///< pc of the first instruction
    uint64_t last = 0;  ///< pc of the last instruction (inclusive)
    std::vector<uint32_t> succs;
    std::vector<uint32_t> preds;
    /** Immediate dominator block id; the entry block (and any block
     *  unreachable from it) is its own idom. */
    uint32_t idom = 0;
    bool reachable = false; ///< reachable from the entry block

    uint64_t size() const { return last - first + 1; }
};

/** A natural loop: the target of a back edge (an edge whose source
 *  is dominated by its target) plus every block that can reach the
 *  back-edge source without passing through the header. */
struct NaturalLoop {
    uint32_t header = 0;
    uint32_t back_edge_src = 0;
    std::vector<uint32_t> body; ///< includes the header; sorted
};

class Cfg
{
  public:
    explicit Cfg(const Program &program);

    const Program &program() const { return program_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    const std::vector<NaturalLoop> &loops() const { return loops_; }

    /** Id of the block containing @p pc. */
    uint32_t blockOf(uint64_t pc) const
    {
        return block_of_[pc];
    }

    uint32_t entryBlock() const { return entry_block_; }

    /** True iff block @p a dominates block @p b (reflexive). Blocks
     *  unreachable from the entry are dominated by nothing but
     *  themselves. */
    bool dominates(uint32_t a, uint32_t b) const;

    /** True iff x1 (ra) is written only by JAL link values, the
     *  precondition for precise `ret` edges. */
    bool raDisciplined() const { return ra_disciplined_; }

  private:
    const Program &program_;
    std::vector<BasicBlock> blocks_;
    std::vector<uint32_t> block_of_; ///< pc -> block id
    std::vector<NaturalLoop> loops_;
    uint32_t entry_block_ = 0;
    bool ra_disciplined_ = false;

    void buildBlocks();
    void buildEdges();
    void computeDominators();
    void findLoops();
};

} // namespace spt

#endif // SPT_ANALYSIS_CFG_H
