#include "analysis/secret_flow.h"

#include <algorithm>
#include <array>
#include <deque>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "isa/introspect.h"
#include "isa/semantics.h"

namespace spt {

namespace {

/** Constants below this are treated as scalars, not pointer bases
 *  (loop bounds, masks, shift counts all live well under it; every
 *  bundled data segment lives well above it). */
constexpr uint64_t kPtrBaseMin = 0x1000;

/** Abstract value of one register. */
struct AbsVal {
    bool secret = false;              ///< may derive from a secret
    std::optional<uint64_t> konst;    ///< exact value, if known
    std::optional<uint64_t> base;     ///< pointer base, offset unknown
};

struct RegState {
    std::array<AbsVal, kNumArchRegs> reg;
};

/** Half-open address interval; the last region extends to +inf. */
struct Region {
    uint64_t lo = 0;
    uint64_t hi = UINT64_MAX; // exclusive (UINT64_MAX ~ unbounded)
};

struct FindingKey {
    LintKind kind;
    uint64_t pc;
    auto operator<=>(const FindingKey &) const = default;
};

} // namespace

const char *
toString(LintKind k)
{
    switch (k) {
      case LintKind::kSecretAddress:
        return "secret-dependent address";
      case LintKind::kSecretBranch:
        return "secret-dependent branch";
    }
    return "?";
}

struct SecretFlowLint::Impl {
    const Cfg &cfg;
    const Program &prog;
    LintOptions opts;

    std::vector<Region> regions;
    std::vector<uint8_t> region_secret;

    std::vector<RegState> block_in;
    std::vector<uint8_t> block_visited;
    std::vector<RegState> pc_in; ///< recorded architectural states
    std::vector<uint8_t> pc_valid;

    std::set<FindingKey> arch_keys;
    std::set<FindingKey> all_keys;
    std::vector<LintFinding> findings;

    Impl(const Cfg &c, LintOptions o)
        : cfg(c), prog(c.program()), opts(o)
    {
    }

    void buildRegions();
    std::vector<uint32_t> regionsOver(uint64_t lo, uint64_t hi) const;
    std::vector<uint32_t> addressRegions(const AbsVal &addr,
                                         int64_t imm, unsigned bytes,
                                         bool confined) const;
    bool regionsSecret(const std::vector<uint32_t> &rs) const;
    std::optional<std::pair<uint64_t, uint64_t>>
    segmentContaining(uint64_t addr) const;

    /** Executes one instruction on @p st. In recording mode emits
     *  findings; in poisoning mode (@p poison) secret stores taint
     *  regions. Returns true iff a region bit changed. */
    bool step(const Instruction &si, uint64_t pc, RegState &st,
              bool confined, bool poison, bool record,
              bool transient);

    bool joinVal(AbsVal &dst, const AbsVal &src) const;
    bool joinState(RegState &dst, const RegState &src) const;

    bool runArchPass(bool record);
    void runSpecPass();
    void emit(LintKind kind, uint64_t pc, const Instruction &si,
              bool transient, const std::string &detail);
};

void
SecretFlowLint::Impl::buildRegions()
{
    std::set<uint64_t> bounds{0};
    for (const auto &[addr, bytes] : prog.dataSegments()) {
        bounds.insert(addr);
        bounds.insert(addr + bytes.size());
    }
    for (const SecretRange &sr : prog.secretRanges()) {
        bounds.insert(sr.base);
        bounds.insert(sr.base + sr.len);
    }
    for (const Instruction &si : prog.code())
        if (si.op == Opcode::kLi &&
            static_cast<uint64_t>(si.imm) >= kPtrBaseMin)
            bounds.insert(static_cast<uint64_t>(si.imm));

    for (auto it = bounds.begin(); it != bounds.end(); ++it) {
        auto next = std::next(it);
        regions.push_back(
            {*it, next == bounds.end() ? UINT64_MAX : *next});
    }
    region_secret.assign(regions.size(), 0);
    for (uint32_t i = 0; i < regions.size(); ++i)
        for (const SecretRange &sr : prog.secretRanges())
            if (sr.overlaps(regions[i].lo, regions[i].hi))
                region_secret[i] = 1;
}

std::vector<uint32_t>
SecretFlowLint::Impl::regionsOver(uint64_t lo, uint64_t hi) const
{
    std::vector<uint32_t> out;
    for (uint32_t i = 0; i < regions.size(); ++i)
        if (lo < regions[i].hi && regions[i].lo < hi)
            out.push_back(i);
    return out;
}

std::optional<std::pair<uint64_t, uint64_t>>
SecretFlowLint::Impl::segmentContaining(uint64_t addr) const
{
    for (const auto &[base, bytes] : prog.dataSegments())
        if (addr >= base && addr < base + bytes.size())
            return std::make_pair(base, base + bytes.size());
    return std::nullopt;
}

/** Lattice join at a control-flow merge. Secrecy is ORed. A value
 *  that is a different constant (or differently-based pointer) on
 *  each path degrades to a pointer base when both candidates sit in
 *  the same data segment — a loop-carried walking pointer keeps its
 *  anchor — and to fully-unknown otherwise. */
bool
SecretFlowLint::Impl::joinVal(AbsVal &dst, const AbsVal &src) const
{
    bool changed = false;
    if (src.secret && !dst.secret) {
        dst.secret = true;
        changed = true;
    }
    if (dst.konst && dst.konst == src.konst)
        return changed;

    auto baseOf = [](const AbsVal &v) -> std::optional<uint64_t> {
        if (v.base)
            return v.base;
        if (v.konst && *v.konst >= kPtrBaseMin)
            return v.konst;
        return std::nullopt;
    };
    const auto b1 = baseOf(dst);
    const auto b2 = baseOf(src);
    std::optional<uint64_t> joined;
    if (b1 && b2) {
        if (*b1 == *b2) {
            joined = b1;
        } else {
            const auto s1 = segmentContaining(*b1);
            const auto s2 = segmentContaining(*b2);
            if (s1 && s2 && s1->first == s2->first)
                joined = std::min(*b1, *b2);
        }
    }
    if (dst.konst) {
        dst.konst.reset();
        changed = true;
    }
    if (dst.base != joined) {
        dst.base = joined;
        changed = true;
    }
    return changed;
}

bool
SecretFlowLint::Impl::joinState(RegState &dst,
                                const RegState &src) const
{
    bool changed = false;
    for (unsigned r = 0; r < kNumArchRegs; ++r)
        changed |= joinVal(dst.reg[r], src.reg[r]);
    return changed;
}

std::vector<uint32_t>
SecretFlowLint::Impl::addressRegions(const AbsVal &addr, int64_t imm,
                                     unsigned bytes,
                                     bool confined) const
{
    if (addr.konst) {
        const uint64_t a = *addr.konst + static_cast<uint64_t>(imm);
        return regionsOver(a, a + bytes);
    }
    if (addr.base) {
        if (confined) {
            // Architectural in-bounds access: confine to the data
            // segment holding the base.
            if (auto seg = segmentContaining(*addr.base))
                return regionsOver(seg->first, seg->second);
        }
        return regionsOver(*addr.base, UINT64_MAX);
    }
    return regionsOver(0, UINT64_MAX);
}

bool
SecretFlowLint::Impl::regionsSecret(
    const std::vector<uint32_t> &rs) const
{
    for (uint32_t i : rs)
        if (region_secret[i])
            return true;
    return false;
}

void
SecretFlowLint::Impl::emit(LintKind kind, uint64_t pc,
                           const Instruction &si, bool transient,
                           const std::string &detail)
{
    const FindingKey key{kind, pc};
    if (!transient)
        arch_keys.insert(key);
    if (!all_keys.insert(key).second)
        return;
    LintFinding f;
    f.kind = kind;
    f.pc = pc;
    f.si = si;
    f.transient_only = transient;
    f.detail = detail;
    findings.push_back(std::move(f));
}

bool
SecretFlowLint::Impl::step(const Instruction &si, uint64_t pc,
                           RegState &st, bool confined, bool poison,
                           bool record, bool transient)
{
    const OpTraits &t = opTraits(si.op);
    bool region_changed = false;

    auto operandDetail = [&](uint8_t reg) {
        std::ostringstream os;
        os << registerName(reg) << " may carry secret-derived data";
        return os.str();
    };

    if (t.is_load || t.is_store) {
        const AbsVal &addr = st.reg[si.rs1];
        if (record && addr.secret)
            emit(LintKind::kSecretAddress, pc, si, transient,
                 operandDetail(si.rs1));
        const auto rs =
            addressRegions(addr, si.imm, t.mem_bytes, confined);
        if (t.is_load && writesReg(si)) {
            AbsVal out;
            out.secret = addr.secret || regionsSecret(rs);
            st.reg[si.rd] = out;
        }
        if (t.is_store && poison && st.reg[si.rs2].secret) {
            for (uint32_t i : rs)
                if (!region_secret[i]) {
                    region_secret[i] = 1;
                    region_changed = true;
                }
        }
        return region_changed;
    }

    if (t.is_cond_branch) {
        if (record && (st.reg[si.rs1].secret || st.reg[si.rs2].secret))
            emit(LintKind::kSecretBranch, pc, si, transient,
                 operandDetail(st.reg[si.rs1].secret ? si.rs1
                                                     : si.rs2));
        return false;
    }
    if (si.op == Opcode::kJalr && record && st.reg[si.rs1].secret)
        emit(LintKind::kSecretBranch, pc, si, transient,
             operandDetail(si.rs1));

    if (!t.has_dest || si.rd == kRegZero)
        return false;

    const SrcRegs s = srcRegs(si);
    AbsVal out;
    for (uint8_t i = 0; i < s.count; ++i)
        out.secret |= st.reg[s.reg[i]].secret;

    bool all_const = true;
    uint64_t v0 = 0, v1 = 0;
    if (s.count >= 1) {
        if (st.reg[s.reg[0]].konst)
            v0 = *st.reg[s.reg[0]].konst;
        else
            all_const = false;
    }
    if (s.count >= 2) {
        if (st.reg[s.reg[1]].konst)
            v1 = *st.reg[s.reg[1]].konst;
        else
            all_const = false;
    }
    if (all_const) {
        out.konst = evaluateOp(si, pc, v0, v1).value;
    } else if (si.op == Opcode::kAdd) {
        // Pointer-base tracking: base + unknown offset.
        const AbsVal &a = st.reg[si.rs1];
        const AbsVal &b = st.reg[si.rs2];
        if (a.konst && *a.konst >= kPtrBaseMin)
            out.base = a.konst;
        else if (b.konst && *b.konst >= kPtrBaseMin)
            out.base = b.konst;
        else if (a.base)
            out.base = a.base;
        else if (b.base)
            out.base = b.base;
    } else if (si.op == Opcode::kAddi) {
        // Offset shifts stay anchored to the same base.
        if (st.reg[si.rs1].base)
            out.base = st.reg[si.rs1].base;
    }
    st.reg[si.rd] = out;
    return false;
}

bool
SecretFlowLint::Impl::runArchPass(bool record)
{
    RegState entry;
    entry.reg[kRegZero].konst = 0;
    entry.reg[kRegSp].konst = kDefaultStackTop;

    const uint32_t nblocks =
        static_cast<uint32_t>(cfg.blocks().size());
    block_in.assign(nblocks, RegState{});
    block_visited.assign(nblocks, 0);
    block_in[cfg.entryBlock()] = entry;
    block_visited[cfg.entryBlock()] = 1;

    bool region_changed = false;
    std::deque<uint32_t> work{cfg.entryBlock()};
    std::vector<uint8_t> queued(nblocks, 0);
    queued[cfg.entryBlock()] = 1;
    while (!work.empty()) {
        const uint32_t id = work.front();
        work.pop_front();
        queued[id] = 0;
        const BasicBlock &bb = cfg.blocks()[id];
        RegState st = block_in[id];
        for (uint64_t pc = bb.first; pc <= bb.last; ++pc) {
            if (record) {
                pc_in[pc] = st;
                pc_valid[pc] = 1;
            }
            region_changed |=
                step(prog.at(pc), pc, st, /*confined=*/true,
                     /*poison=*/true, record, /*transient=*/false);
        }
        for (uint32_t sidx : bb.succs) {
            bool changed;
            if (!block_visited[sidx]) {
                block_in[sidx] = st;
                block_visited[sidx] = 1;
                changed = true;
            } else {
                changed = joinState(block_in[sidx], st);
            }
            if (changed && !queued[sidx]) {
                queued[sidx] = 1;
                work.push_back(sidx);
            }
        }
    }
    return region_changed;
}

void
SecretFlowLint::Impl::runSpecPass()
{
    // Join of architectural states at every mispredictable source:
    // the register file a transient window can start from.
    RegState seed;
    bool have_source = false;
    for (uint64_t pc = 0; pc < prog.size(); ++pc) {
        const Instruction &si = prog.at(pc);
        if (!opTraits(si.op).is_cond_branch &&
            si.op != Opcode::kJalr)
            continue;
        if (!pc_valid[pc])
            continue;
        if (!have_source) {
            seed = pc_in[pc];
            have_source = true;
        } else {
            joinState(seed, pc_in[pc]);
        }
    }
    if (!have_source || opts.speculation_window == 0)
        return;

    const uint32_t nblocks =
        static_cast<uint32_t>(cfg.blocks().size());
    std::vector<RegState> in(nblocks, seed);
    std::vector<unsigned> budget(nblocks, opts.speculation_window);
    std::deque<uint32_t> work;
    std::vector<uint8_t> queued(nblocks, 1);
    for (uint32_t b = 0; b < nblocks; ++b)
        work.push_back(b);

    while (!work.empty()) {
        const uint32_t id = work.front();
        work.pop_front();
        queued[id] = 0;
        const BasicBlock &bb = cfg.blocks()[id];
        RegState st = in[id];
        unsigned fuel = budget[id];
        for (uint64_t pc = bb.first; pc <= bb.last && fuel > 0;
             ++pc, --fuel)
            step(prog.at(pc), pc, st, /*confined=*/false,
                 /*poison=*/false, /*record=*/true,
                 /*transient=*/true);
        if (fuel == 0)
            continue;
        for (uint32_t sidx : bb.succs) {
            bool changed = joinState(in[sidx], st);
            if (budget[sidx] < fuel) {
                budget[sidx] = fuel;
                changed = true;
            }
            if (changed && !queued[sidx]) {
                queued[sidx] = 1;
                work.push_back(sidx);
            }
        }
    }
}

SecretFlowLint::SecretFlowLint(const Cfg &cfg, LintOptions opts)
{
    Impl impl(cfg, opts);
    if (cfg.program().secretRanges().empty())
        return;
    impl.pc_in.resize(cfg.program().size());
    impl.pc_valid.assign(cfg.program().size(), 0);
    impl.buildRegions();

    // Architectural pass: iterate until the store-poisoning reaches
    // its (monotone, hence finite) region fixpoint, then record. A
    // run whose store-poisoning changed a region bit may have read
    // the stale bit earlier in the same run, so rerun from scratch.
    while (impl.runArchPass(/*record=*/false)) {
    }
    impl.runArchPass(/*record=*/true);

    // Speculative pass reuses the architectural region bits.
    impl.runSpecPass();

    findings_ = std::move(impl.findings);
    std::sort(findings_.begin(), findings_.end(),
              [](const LintFinding &a, const LintFinding &b) {
                  return std::tie(a.pc, a.kind) <
                         std::tie(b.pc, b.kind);
              });
}

} // namespace spt
