/**
 * @file
 * Quickstart: the three layers of the library in one file.
 *
 *  1. The gate-level untaint algebra of paper Section 5 (the
 *     Figure 3 composition example, verbatim).
 *  2. Assembling a TRISC program and running it on the functional
 *     reference CPU.
 *  3. Running the same program on the cycle-level out-of-order core
 *     under different protection schemes and comparing cost.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "common/logging.h"
#include "core/untaint_algebra.h"
#include "isa/assembler.h"
#include "isa/functional_cpu.h"
#include "sim/simulator.h"

using namespace spt;

namespace {

void
gateAlgebraDemo()
{
    printf("--- 1. Untaint algebra (paper Fig. 3) ---\n");
    // out = (t0 | t0b) & in2, with in2 = 1 public and the OR inputs
    // secret zeros. Declassifying `out` lets the attacker infer t0
    // (backward through AND), and then the OR inputs.
    GateGraph g;
    const int or_a = g.addInput(false, true);  // secret 0
    const int or_b = g.addInput(false, true);  // secret 0
    const int in2 = g.addInput(true, false);   // public 1
    const int t0 = g.addGate(GateOp::kOr, or_a, or_b);
    const int out = g.addGate(GateOp::kAnd, t0, in2);

    printf("before declassify: t0 tainted=%d, out tainted=%d\n",
           g.tainted(t0), g.tainted(out));
    g.declassify(out); // the non-speculative execution leaked it
    const unsigned n = g.propagate();
    printf("after declassify(out): propagate() untainted %u wires; "
           "t0 tainted=%d, or_a tainted=%d, or_b tainted=%d\n\n",
           n, g.tainted(t0), g.tainted(or_a), g.tainted(or_b));
}

const char *kProgram = R"(
    .data
indices:
    .quad 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
table:
    .quad 10, 11, 12, 13, 14, 15, 16, 17, 18, 19
    .text
    la   a1, indices
    la   a4, table
    li   a0, 16
    li   a2, 0          # sum
    li   a3, 0          # max
loop:
    ld   t0, 0(a1)      # index: tainted on first touch
    slli t1, t0, 3
    add  t1, t1, a4
    ld   t2, 0(t1)      # gather: a transmitter fed by loaded data
    add  a2, a2, t2
    max  a3, a3, t2
    addi a1, a1, 8
    addi a0, a0, -1
    bnez a0, loop
    halt
)";

void
functionalDemo()
{
    printf("--- 2. Assemble + functional reference run ---\n");
    const Program p = assemble(kProgram);
    FunctionalCpu cpu(p);
    const auto r = cpu.run();
    printf("retired %llu instructions; sum=%llu max=%llu\n\n",
           static_cast<unsigned long long>(r.instructions),
           static_cast<unsigned long long>(cpu.reg(12)),  // a2
           static_cast<unsigned long long>(cpu.reg(13))); // a3
}

void
timingDemo()
{
    printf("--- 3. Cycle-level runs under Table-2 schemes ---\n");
    const Program p = assemble(kProgram);
    for (const NamedConfig &nc : table2Configs()) {
        SimConfig cfg;
        cfg.engine = nc.engine;
        cfg.core.attack_model = AttackModel::kFuturistic;
        cfg.lockstep_check = true; // verify against the reference
        Simulator sim(p, cfg);
        const SimResult r = sim.run();
        printf("%-22s %6llu cycles  IPC %.2f  untaint events %llu\n",
               nc.name.c_str(),
               static_cast<unsigned long long>(r.cycles), r.ipc,
               static_cast<unsigned long long>(
                   sim.stat("engine.untaint.events")));
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    gateAlgebraDemo();
    functionalDemo();
    timingDemo();
    return 0;
}
