/**
 * @file
 * A cycle-by-cycle trace of SPT's untaint machinery on the paper's
 * Figure 4 example:
 *
 *     I1: r0 = r1 + r2
 *     I2: load r3 <- (r0)      # transmitter
 *     I3: r4 = r0 + r2
 *
 * With r1 tainted and r2 public, I2 is delayed. When I2 reaches the
 * visibility point its address operand r0 is declassified; the
 * backward rule then infers r1 (r1 = r0 - r2) and the forward rule
 * infers r4 — exactly the final state of Figure 4(c).
 *
 * Build & run:  ./build/examples/untaint_trace
 */

#include <cstdio>

#include "common/logging.h"
#include "core/engine_factory.h"
#include "core/spt_engine.h"
#include "isa/assembler.h"
#include "uarch/core.h"

using namespace spt;

int
main()
{
    setVerbose(false);
    // s1 (r1) is made "secret" by loading it from memory that was
    // never leaked; s2 (r2) is a public constant.
    // A divide chain ahead of the snippet keeps I1/I3 in the ROB
    // (commit is in order) while the Spectre-model visibility point
    // sweeps past them — opening the window in which declassifying
    // I2's operand visibly back-propagates, as in Figure 4. The
    // snippet runs twice so the second iteration executes with a
    // warm I-cache; NoShadowL1 keeps the loaded value tainted on
    // both iterations.
    const char *src = R"(
    .data
secret:
    .quad 0x100040           # points at `slot`
slot:
    .quad 77
    .text
    la   t0, secret
    li   a0, 2
iter:
    ld   s1, 0(t0)           # s1: tainted loaded data
    li   s2, 8
    li   t4, 1000
    li   t5, 3
    div  t6, t4, t5          # slow, independent work that blocks
    div  t6, t6, t5          # in-order commit but not the VP
    div  t6, t6, t5
    div  t6, t6, t5
    div  t6, t6, t5
    div  t6, t6, t5
    div  t6, t6, t5
    div  t6, t6, t5
    add  s0, s1, s2          # I1: r0 = r1 + r2
    ld   s3, 0(s0)           # I2: transmitter, delayed while r0 tainted
    add  s4, s0, s2          # I3: r4 = r0 + r2
    addi a0, a0, -1
    bnez a0, iter
    halt
)";
    const Program p = assemble(src);

    EngineConfig ec;
    ec.scheme = ProtectionScheme::kSpt;
    ec.spt.method = UntaintMethod::kBackward;
    ec.spt.shadow = ShadowKind::kNone;
    CoreParams cp;
    cp.attack_model = AttackModel::kSpectre;
    Core core(p, cp, MemorySystemParams{}, makeEngine(ec));
    auto &engine = dynamic_cast<SptEngine &>(core.engine());

    auto mask_str = [](TaintMask m) {
        return m.nothing() ? "public " : "TAINTED";
    };

    printf("cycle | I2(load) state        | r0      r1      r4\n");
    printf("------+-----------------------+------------------------"
           "\n");
    uint64_t last_printed = ~uint64_t{0};
    for (int c = 0; c < 3000 && !core.halted(); ++c) {
        core.tick();
        // Find the in-flight instructions of interest by pc.
        DynInstPtr i1, i2, i3;
        for (const DynInstPtr &d : core.rob()) {
            if (d->pc == 14) i1 = d;
            if (d->pc == 15) i2 = d;
            if (d->pc == 16) i3 = d;
        }
        if (!i1 || !i2 || !i3)
            continue;
        const auto *t1 = engine.instTaint(i1->seq);
        const auto *t2 = engine.instTaint(i2->seq);
        const auto *t3 = engine.instTaint(i3->seq);
        if (!t1 || !t2 || !t3)
            continue;
        const char *state = !i2->issued          ? "waiting operands"
                            : !i2->access_done   ? "delayed (tainted)"
                            : !i2->completed     ? "accessing memory"
                                                 : "complete";
        // r0 = I1's dest; r1 = I1's src0; r4 = I3's dest.
        const uint64_t key =
            (t1->dest.raw() << 8) ^ (t1->src[0].raw() << 4) ^
            t3->dest.raw() ^ (uint64_t{i2->at_vp} << 16) ^
            (uint64_t(i2->access_done) << 17);
        if (key == last_printed)
            continue;
        last_printed = key;
        printf("%5llu | %-21s | %s %s %s%s\n",
               static_cast<unsigned long long>(core.cycle()), state,
               mask_str(t1->dest), mask_str(t1->src[0]),
               mask_str(t3->dest),
               i2->at_vp ? "   <- I2 at VP, r0 declassified" : "");
    }
    printf("\nFinal state matches Figure 4(c): r0, r1 and r4 all "
           "inferable by the\nattacker once the transmitter's "
           "operand was declassified; the load\nexecuted without "
           "protection only after that point.\n");
    return 0;
}
