/**
 * @file
 * The paper's headline use case: protecting existing constant-time
 * cryptographic code against speculative leakage *without* paying
 * the delay-everything cost.
 *
 * Runs the three data-oblivious kernels (ChaCha20, bitslice-AES
 * style, djbsort) under the Futuristic attack model — the
 * conservative model appropriate for security-critical code — and
 * compares SecureBaseline (delay every load/store to the visibility
 * point) against full SPT. The paper reports 2.8x average slowdown
 * for SecureBaseline vs 1.10x for SPT on these kernels (an 18x
 * overhead reduction); this harness reproduces the shape of that
 * result on the substituted kernels.
 *
 * Build & run:  ./build/examples/constant_time_crypto
 */

#include <cstdio>

#include "common/logging.h"
#include "sim/simulator.h"
#include "workloads/workloads.h"

using namespace spt;

int
main()
{
    setVerbose(false);
    printf("Constant-time kernels, Futuristic attack model\n");
    printf("(execution time normalized to UnsafeBaseline)\n\n");
    printf("%-18s %14s %14s %8s\n", "kernel", "SecureBaseline",
           "SPT{Bwd,L1}", "STT");

    double sum_secure = 0, sum_spt = 0;
    int n = 0;
    for (const std::string &name : ctWorkloadNames()) {
        const Workload &w = workloadByName(name);
        double cycles[4] = {0, 0, 0, 0};
        int idx = 0;
        for (const char *scheme :
             {"UnsafeBaseline", "SecureBaseline",
              "SPT{Bwd,ShadowL1}", "STT"}) {
            EngineConfig engine;
            for (const NamedConfig &nc : table2Configs())
                if (nc.name == scheme)
                    engine = nc.engine;
            const SimResult r = runProgram(
                w.program, engine, AttackModel::kFuturistic);
            cycles[idx++] = static_cast<double>(r.cycles);
        }
        const double secure = cycles[1] / cycles[0];
        const double spt = cycles[2] / cycles[0];
        const double stt = cycles[3] / cycles[0];
        printf("%-18s %13.2fx %13.2fx %7.2fx\n", name.c_str(),
               secure, spt, stt);
        sum_secure += secure;
        sum_spt += spt;
        ++n;
    }
    const double avg_secure = sum_secure / n;
    const double avg_spt = sum_spt / n;
    printf("\naverage: SecureBaseline %.2fx, SPT %.2fx", avg_secure,
           avg_spt);
    if (avg_spt > 1.0)
        printf("  -> SPT reduces the overhead by %.1fx",
               (avg_secure - 1.0) / (avg_spt - 1.0));
    printf("\n\nSPT gives these kernels back their constant-time "
           "guarantee under\nspeculation: the secrets never reach "
           "a transmitter non-speculatively,\nso they stay tainted "
           "and every transient transmitter that could leak\nthem "
           "is delayed — while the kernels' public address streams "
           "run at\nnearly full speed.\n");
    return 0;
}
