/**
 * @file
 * Attack walkthrough: mounts the two penetration-test attacks
 * (Section 9.1) against selected design points and narrates what the
 * attacker observes through the cache side channel.
 *
 *  - Spectre V1: leaks *speculatively-accessed* data. Blocked by
 *    STT, SecureBaseline, and every SPT variant.
 *  - Constant-time victim + BTB injection: leaks a *non-speculative
 *    secret* out of a register. STT does NOT block this (its
 *    protection scope excludes non-speculatively-accessed data);
 *    SPT does, because the secret was never transmitted by the
 *    non-speculative execution and therefore stays tainted.
 *
 * Build & run:  ./build/examples/spectre_demo
 */

#include <cstdio>

#include "common/logging.h"
#include "sim/simulator.h"
#include "workloads/attack_programs.h"

using namespace spt;

namespace {

void
mount(const char *title, const AttackProgram &ap)
{
    printf("=== %s ===\n", title);
    printf("secret byte value: %u (never architecturally leaked)\n",
           ap.secret);
    for (const char *scheme :
         {"UnsafeBaseline", "STT", "SPT{Bwd,ShadowL1}",
          "SecureBaseline"}) {
        EngineConfig engine;
        for (const NamedConfig &nc : table2Configs())
            if (nc.name == scheme)
                engine = nc.engine;
        SimConfig cfg;
        cfg.engine = engine;
        cfg.core.attack_model = AttackModel::kFuturistic;
        Simulator sim(ap.program, cfg);
        sim.run();

        // The attacker's Flush+Reload-style readout: which probe
        // slot's cache line became resident?
        MemorySystem &m = sim.core().memorySystem();
        int recovered = -1;
        for (int v = 0; v < 256; ++v) {
            const uint64_t addr =
                ap.probe_base +
                static_cast<uint64_t>(v) * ap.probe_stride;
            const bool hot =
                m.inL1D(addr) || m.inL2(addr) || m.inL3(addr);
            if (hot && v != ap.trained_value) {
                recovered = v;
                break;
            }
        }
        if (recovered >= 0)
            printf("  %-20s attacker recovers byte = %3d  %s\n",
                   scheme, recovered,
                   recovered == ap.secret ? "(SECRET LEAKED)"
                                          : "(noise)");
        else
            printf("  %-20s attacker recovers nothing "
                   "(protected)\n",
                   scheme);
    }
    printf("\n");
}

} // namespace

int
main()
{
    setVerbose(false);
    mount("Spectre V1 (speculatively-accessed data)",
          makeSpectreV1());
    mount("Constant-time victim + BTB injection "
          "(non-speculative secret)",
          makeCtVictim());
    printf("Note how STT blocks Spectre V1 but not the second "
           "attack: the secret\nwas brought into the register file "
           "non-speculatively, which is outside\nSTT's protection "
           "scope. SPT keeps it tainted because the "
           "non-speculative\nexecution never leaked it "
           "(Definition 1 of the paper).\n");
    return 0;
}
