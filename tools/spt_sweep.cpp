/**
 * @file
 * spt_sweep: control-plane client for a running spt_sweepd
 * (sim/sweep_service.h). Sends one protocol request and prints the
 * JSON response on stdout.
 *
 *   spt_sweep --socket /tmp/spt.sock ping      liveness probe
 *   spt_sweep --socket /tmp/spt.sock stats     totals + cache traffic
 *   spt_sweep --socket /tmp/spt.sock metrics   full registry + live
 *                                              progress (JSON)
 *   spt_sweep --socket /tmp/spt.sock shutdown  drain and stop
 *
 * Exit codes follow the tool convention (common/cli.h): 0 when the
 * daemon answered ok, 1 when it answered with a structured error,
 * 2 for usage/connection problems.
 */

#include <cstdio>

#include "common/cli.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "common/logging.h"
#include "sim/sweep_service.h"

using namespace spt;

int
main(int argc, char **argv)
{
    return toolMain("spt_sweep", [&]() -> int {
        std::string socket_path, op;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--socket") {
                if (i + 1 >= argc)
                    SPT_FATAL("--socket requires a path");
                socket_path = argv[++i];
            } else if (arg == "ping" || arg == "stats" ||
                       arg == "metrics" || arg == "shutdown") {
                if (!op.empty())
                    SPT_FATAL("multiple commands given");
                op = arg;
            } else {
                SPT_FATAL("unknown argument " << arg
                          << " (expected --socket PATH "
                             "ping|stats|metrics|shutdown)");
            }
        }
        if (socket_path.empty() || op.empty())
            SPT_FATAL("usage: spt_sweep --socket PATH "
                      "ping|stats|metrics|shutdown");

        JsonWriter jw;
        jw.beginObject();
        jw.field("op", op);
        jw.endObject();
        const std::string response =
            serviceRequest(socket_path, jw.str());
        std::printf("%s\n", response.c_str());
        return parseJson(response).getBool("ok", false) ? 0 : 1;
    });
}
