/**
 * @file
 * spt_sweep: control-plane client for a running spt_sweepd
 * (sim/sweep_service.h). Sends one protocol request and prints the
 * JSON response on stdout.
 *
 *   spt_sweep --socket /tmp/spt.sock ping      liveness probe
 *   spt_sweep --socket /tmp/spt.sock stats     totals + cache traffic
 *   spt_sweep --socket /tmp/spt.sock metrics   full registry + live
 *                                              progress (JSON)
 *   spt_sweep --socket /tmp/spt.sock health    drain/journal/queue
 *                                              state (DESIGN.md §16)
 *   spt_sweep --socket /tmp/spt.sock shutdown  drain and stop
 *
 * --deadline SECONDS bounds the whole exchange (connect + retries +
 * response) and retries transport failures with jittered backoff in
 * the meantime — the building block for "wait for the daemon to
 * come back" scripts; an expired deadline exits 2, never hangs.
 * --retries N overrides the transport retry budget.
 *
 * Exit codes follow the tool convention (common/cli.h): 0 when the
 * daemon answered ok, 1 when it answered with a structured error,
 * 2 for usage/connection/deadline problems.
 */

#include <cstdio>

#include "common/cli.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "common/logging.h"
#include "sim/sweep_service.h"

using namespace spt;

int
main(int argc, char **argv)
{
    return toolMain("spt_sweep", [&]() -> int {
        std::string socket_path, op;
        ServiceClientOptions opts;
        bool resilient = false;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value_of = [&](const char *flag) {
                if (i + 1 >= argc)
                    SPT_FATAL(flag << " requires a value");
                return std::string(argv[++i]);
            };
            if (arg == "--socket") {
                socket_path = value_of("--socket");
            } else if (arg == "--deadline") {
                opts.deadline_seconds = parseDouble(
                    value_of("--deadline"), "--deadline");
                if (opts.deadline_seconds <= 0.0)
                    SPT_FATAL("--deadline must be positive");
                resilient = true;
            } else if (arg == "--retries") {
                opts.max_retries =
                    static_cast<unsigned>(parseUnsigned(
                        value_of("--retries"), "--retries", 1000));
                resilient = true;
            } else if (arg == "ping" || arg == "stats" ||
                       arg == "metrics" || arg == "health" ||
                       arg == "shutdown") {
                if (!op.empty())
                    SPT_FATAL("multiple commands given");
                op = arg;
            } else {
                SPT_FATAL("unknown argument " << arg
                          << " (expected --socket PATH"
                             " [--deadline SECONDS] [--retries N] "
                             "ping|stats|metrics|health|shutdown)");
            }
        }
        if (socket_path.empty() || op.empty())
            SPT_FATAL("usage: spt_sweep --socket PATH "
                      "[--deadline SECONDS] [--retries N] "
                      "ping|stats|metrics|health|shutdown");

        JsonWriter jw;
        jw.beginObject();
        jw.field("op", op);
        jw.endObject();
        // Single attempt by default (a control probe should fail
        // fast); --deadline/--retries switch to the resilient
        // transport that rides out a daemon restart.
        const std::string response =
            resilient ? serviceRequest(socket_path, jw.str(), opts)
                      : serviceRequest(socket_path, jw.str());
        std::printf("%s\n", response.c_str());
        return parseJson(response).getBool("ok", false) ? 0 : 1;
    });
}
