/**
 * @file
 * Command-line simulation driver mirroring the paper artifact's
 * run_spt.py interface (Appendix A): pick a workload, a threat
 * model, and an untaint configuration; run it; write stats.txt.
 *
 *   spt_run --workload <name> [--enable-spt]
 *           [--threat-model spectre|futuristic]
 *           [--untaint-method none|fwd|bwd|ideal]
 *           [--enable-shadow-l1 | --enable-shadow-mem]
 *           [--broadcast-width N]
 *           [--stt] [--secure-baseline]
 *           [--track-insts] [--output-dir DIR]
 *           [--trace] [--trace-out F] [--pipeview-out F]
 *           [--profile] [--profile-out F]
 *           [--interval-stats N] [--interval-out F]
 *   spt_run --list-workloads
 *
 * Without --enable-spt/--stt/--secure-baseline the insecure
 * baseline runs (as in the artifact). The Table-2 configurations
 * map exactly as in the paper's appendix:
 *
 *   SecureBaseline        --enable-spt --untaint-method none
 *   SPT{Fwd,NoShadowL1}   --enable-spt --untaint-method fwd
 *   SPT{Bwd,NoShadowL1}   --enable-spt --untaint-method bwd
 *   SPT{Bwd,ShadowL1}     --enable-spt --untaint-method bwd
 *                         --enable-shadow-l1
 *   SPT{Bwd,ShadowMem}    --enable-spt --untaint-method bwd
 *                         --enable-shadow-mem
 *   SPT{Ideal,ShadowMem}  --enable-spt --untaint-method ideal
 *                         --enable-shadow-mem
 *
 * (Note: the artifact's SecureBaseline is SPT with untainting
 * disabled, which still declassifies at the VP; the stricter
 * delay-to-VP baseline used in our Figure 7 tables is available as
 * --secure-baseline.)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/cli.h"
#include "common/json.h"
#include "common/logging.h"
#include "core/knowledge_map.h"
#include "sim/simulator.h"
#include "workloads/workloads.h"

using namespace spt;

namespace {

struct Options {
    std::string workload;
    bool list_workloads = false;
    bool enable_spt = false;
    bool stt = false;
    bool secure_baseline = false;
    std::string threat_model = "spectre";
    std::string untaint_method;
    bool shadow_l1 = false;
    bool shadow_mem = false;
    unsigned broadcast_width = 3;
    bool track_insts = false;
    std::string output_dir;
    bool trace = false;
    std::string trace_out = "spt_trace.txt";
    std::string pipeview_out = "spt_pipeview.txt";
    bool profile = false;
    std::string profile_out;
    uint64_t interval_stats = 0;
    std::string interval_out = "spt_intervals.json";
    bool fast_forward = false;
    std::string knowledge_map;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --workload <name> [options]\n"
        "       %s --list-workloads\n"
        "options:\n"
        "  --enable-spt                 enable SPT protection\n"
        "  --threat-model <m>           spectre | futuristic\n"
        "  --untaint-method <u>         none | fwd | bwd | ideal\n"
        "  --enable-shadow-l1           track L1D data taint\n"
        "  --enable-shadow-mem          track all-memory data taint\n"
        "  --broadcast-width <n>        untaint broadcast width\n"
        "  --knowledge-map <path>       pre-declassify from a "
        "spt_lint-compiled map\n"
        "  --stt                        run the STT baseline\n"
        "  --secure-baseline            delay loads/stores to VP\n"
        "  --track-insts                verbose untaint statistics\n"
        "  --output-dir <dir>           where to write stats.txt\n"
        "  --trace                      record the taint-lifecycle "
        "trace\n"
        "  --trace-out <path>           text trace file "
        "(default spt_trace.txt)\n"
        "  --pipeview-out <path>        O3PipeView/Konata trace file "
        "(default spt_pipeview.txt)\n"
        "  --profile                    print the top delay sources\n"
        "  --profile-out <path>         also write the profile as "
        "JSON\n"
        "  --interval-stats <n>         sample interval metrics every "
        "n cycles\n"
        "  --interval-out <path>        interval time-series JSON "
        "(default spt_intervals.json)\n"
        "  --fast-forward               skip provably quiescent "
        "cycles (stat-identical)\n",
        argv0, argv0);
    std::exit(2);
}

std::string
needValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage(argv[0]);
    return argv[++i];
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--workload" || a == "--executable")
            opt.workload = needValue(argc, argv, i);
        else if (a == "--list-workloads")
            opt.list_workloads = true;
        else if (a == "--enable-spt")
            opt.enable_spt = true;
        else if (a == "--stt")
            opt.stt = true;
        else if (a == "--secure-baseline")
            opt.secure_baseline = true;
        else if (a == "--threat-model")
            opt.threat_model = needValue(argc, argv, i);
        else if (a == "--untaint-method")
            opt.untaint_method = needValue(argc, argv, i);
        else if (a == "--enable-shadow-l1")
            opt.shadow_l1 = true;
        else if (a == "--enable-shadow-mem")
            opt.shadow_mem = true;
        else if (a == "--broadcast-width")
            opt.broadcast_width = static_cast<unsigned>(
                parseUnsigned(needValue(argc, argv, i),
                              "--broadcast-width", 64));
        else if (a == "--knowledge-map")
            opt.knowledge_map = needValue(argc, argv, i);
        else if (a == "--track-insts")
            opt.track_insts = true;
        else if (a == "--output-dir")
            opt.output_dir = needValue(argc, argv, i);
        else if (a == "--trace")
            opt.trace = true;
        else if (a == "--trace-out") {
            opt.trace = true;
            opt.trace_out = needValue(argc, argv, i);
        } else if (a == "--pipeview-out") {
            opt.trace = true;
            opt.pipeview_out = needValue(argc, argv, i);
        } else if (a == "--profile")
            opt.profile = true;
        else if (a == "--profile-out") {
            opt.profile = true;
            opt.profile_out = needValue(argc, argv, i);
        } else if (a == "--interval-stats")
            opt.interval_stats = parseUnsigned(
                needValue(argc, argv, i), "--interval-stats");
        else if (a == "--fast-forward")
            opt.fast_forward = true;
        else if (a == "--interval-out")
            opt.interval_out = needValue(argc, argv, i);
        else if (a == "--help" || a == "-h")
            usage(argv[0]);
        else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage(argv[0]);
        }
    }
    return opt;
}

SimConfig
buildConfig(const Options &opt, const KnowledgeMap *map)
{
    SimConfig cfg;
    if (opt.shadow_l1 && opt.shadow_mem)
        SPT_FATAL("cannot specify both --enable-shadow-l1 and "
                  "--enable-shadow-mem");
    if (opt.threat_model == "spectre")
        cfg.core.attack_model = AttackModel::kSpectre;
    else if (opt.threat_model == "futuristic")
        cfg.core.attack_model = AttackModel::kFuturistic;
    else
        SPT_FATAL("unknown threat model: " << opt.threat_model);

    if (opt.stt) {
        cfg.engine.scheme = ProtectionScheme::kStt;
    } else if (opt.secure_baseline) {
        cfg.engine.scheme = ProtectionScheme::kSecureBaseline;
    } else if (opt.enable_spt) {
        cfg.engine.scheme = ProtectionScheme::kSpt;
        if (opt.untaint_method.empty())
            SPT_FATAL("--enable-spt requires --untaint-method");
        if (opt.untaint_method == "none")
            cfg.engine.spt.method = UntaintMethod::kNone;
        else if (opt.untaint_method == "fwd")
            cfg.engine.spt.method = UntaintMethod::kForward;
        else if (opt.untaint_method == "bwd")
            cfg.engine.spt.method = UntaintMethod::kBackward;
        else if (opt.untaint_method == "ideal")
            cfg.engine.spt.method = UntaintMethod::kIdeal;
        else
            SPT_FATAL("unknown untaint method: "
                      << opt.untaint_method);
        cfg.engine.spt.shadow =
            opt.shadow_mem ? ShadowKind::kShadowMem
            : opt.shadow_l1 ? ShadowKind::kShadowL1
                            : ShadowKind::kNone;
        cfg.engine.spt.broadcast_width = opt.broadcast_width;
        cfg.engine.spt.knowledge_map = map;
    } else {
        cfg.engine.scheme = ProtectionScheme::kUnsafeBaseline;
    }
    cfg.profile = opt.profile;
    cfg.interval_stats = opt.interval_stats;
    cfg.core.fast_forward = opt.fast_forward;
    return cfg;
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        SPT_FATAL("cannot write " << path);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    // Exit codes: 0 the run halted, 1 it did not (livelock /
    // cycle-budget exhaustion), 2 usage or environment errors
    // (unknown workload, malformed flag, unwritable output), 70
    // internal errors — see common/cli.h.
    return toolMain("spt_run", [&] {
    const Options opt = parse(argc, argv);

    if (opt.list_workloads) {
        std::printf("%-18s %-14s %s\n", "name", "category",
                    "substitutes");
        for (const Workload &w : allWorkloads())
            std::printf("%-18s %-14s %s\n", w.name.c_str(),
                        w.category.c_str(),
                        w.substitutes.c_str());
        return 0;
    }
    if (opt.workload.empty())
        usage(argv[0]);

    {
        const Workload &w = workloadByName(opt.workload);
        KnowledgeMap map;
        const KnowledgeMap *map_ptr = nullptr;
        if (!opt.knowledge_map.empty()) {
            if (!opt.enable_spt)
                SPT_FATAL("--knowledge-map requires --enable-spt");
            map = KnowledgeMap::loadFromFile(opt.knowledge_map);
            map_ptr = &map;
        }
        const SimConfig cfg = buildConfig(opt, map_ptr);
        Simulator sim(w.program, cfg);
        std::ofstream trace_out, pipeview_out;
        if (opt.trace) {
            trace_out = openOut(opt.trace_out);
            pipeview_out = openOut(opt.pipeview_out);
            sim.enableTrace(&trace_out, &pipeview_out);
        }
        const SimResult r = sim.run();

        std::printf("workload      %s\n", w.name.c_str());
        std::printf("config        %s\n",
                    engineConfigName(cfg.engine).c_str());
        std::printf("threat model  %s\n",
                    opt.threat_model.c_str());
        std::printf("numCycles     %llu\n",
                    static_cast<unsigned long long>(r.cycles));
        std::printf("instructions  %llu\n",
                    static_cast<unsigned long long>(
                        r.instructions));
        std::printf("ipc           %.3f\n", r.ipc);
        std::printf("termination   %s\n",
                    terminationName(r.termination));
        if (!r.halted)
            std::fprintf(stderr,
                         "warning: run did not halt (%s)\n",
                         terminationName(r.termination));
        if (opt.track_insts) {
            std::printf("--- untaint statistics ---\n");
            for (const auto &[name, value] :
                 sim.core().engine().stats().counters())
                std::printf("%-28s %llu\n", name.c_str(),
                            static_cast<unsigned long long>(value));
        }
        if (opt.trace) {
            trace_out.close();
            pipeview_out.close();
            std::printf("trace written to %s (pipeview: %s)\n",
                        opt.trace_out.c_str(),
                        opt.pipeview_out.c_str());
        }
        if (sim.profiler()) {
            std::printf("--- delay attribution ---\n");
            std::ostringstream table;
            sim.profiler()->writeTable(table);
            std::fputs(table.str().c_str(), stdout);
            if (!opt.profile_out.empty()) {
                writeReportFile(opt.profile_out,
                                sim.profiler()->toJson() + "\n");
                std::printf("profile written to %s\n",
                            opt.profile_out.c_str());
            }
        }
        if (sim.intervals()) {
            writeReportFile(opt.interval_out,
                            sim.intervals()->toJson() + "\n");
            std::printf("interval metrics written to %s\n",
                        opt.interval_out.c_str());
        }
        if (!opt.output_dir.empty()) {
            const std::string path =
                opt.output_dir + "/stats.txt";
            std::ofstream out(path);
            if (!out)
                SPT_FATAL("cannot write " << path);
            out << "numCycles " << r.cycles << "\n";
            sim.dumpStats(out);
            JsonWriter jw;
            jw.beginObject();
            jw.field("numCycles", r.cycles);
            jw.key("stats");
            sim.dumpStatsJson(jw);
            jw.endObject();
            const std::string json_path =
                opt.output_dir + "/stats.json";
            writeReportFile(json_path, jw.str() + "\n");
            std::printf("stats written to %s and %s\n",
                        path.c_str(), json_path.c_str());
        }
        return r.halted ? 0 : 1;
    }
    });
}
