/**
 * @file
 * spt_top: live monitor for a running spt_sweepd (DESIGN.md §15).
 * Polls the daemon's `metrics` and `stats` ops and renders fleet
 * health — queue depth, in-flight batch, cache hit rate, per-slot
 * job progress — as a terminal dashboard.
 *
 *   spt_top --socket /tmp/spt.sock             watch mode (2 s period)
 *   spt_top --socket /tmp/spt.sock --interval 5
 *   spt_top --socket /tmp/spt.sock --once      one sample, for scripts
 *   spt_top --socket /tmp/spt.sock --once --prometheus
 *                                              raw text exposition
 *   spt_top --socket /tmp/spt.sock --health    one-shot health check
 *                                              (drain/journal/queue
 *                                              state, DESIGN.md §16)
 *
 * Exit codes follow the tool convention (common/cli.h): 0 on a
 * clean sample/quit, 2 when the daemon is unreachable.
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "common/cli.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "common/logging.h"
#include "sim/sweep_service.h"

using namespace spt;

namespace {

uint64_t
counterOf(const JsonValue &metrics, const std::string &name)
{
    return metrics.at("counters").getU64(name, 0);
}

void
renderSample(const JsonValue &stats, const JsonValue &mx)
{
    const JsonValue &metrics = mx.at("metrics");
    const uint64_t hits = stats.at("cache").getU64("hits", 0);
    const uint64_t misses = stats.at("cache").getU64("misses", 0);
    // Live (mid-batch) cache traffic comes from the registry; the
    // stats op's totals lag until a batch completes.
    const uint64_t live_hits = counterOf(metrics,
                                         "runner.cache.hits");
    const uint64_t live_misses =
        counterOf(metrics, "runner.cache.misses");
    const uint64_t inflight = mx.getU64("inflight_batch", 0);
    char inflight_str[32] = "none";
    if (inflight != 0)
        std::snprintf(inflight_str, sizeof inflight_str, "#%llu",
                      static_cast<unsigned long long>(inflight));

    std::printf("batches: %llu executed | queue %llu | in-flight %s\n",
                static_cast<unsigned long long>(
                    stats.getU64("batches_executed", 0)),
                static_cast<unsigned long long>(
                    mx.getU64("queue_depth", 0)),
                inflight_str);
    std::printf("jobs:    %llu executed | %llu failed | workers %llu\n",
                static_cast<unsigned long long>(
                    stats.getU64("jobs_executed", 0)),
                static_cast<unsigned long long>(
                    stats.getU64("failed_jobs", 0)),
                static_cast<unsigned long long>(
                    stats.getU64("workers", 0)));
    const uint64_t total = live_hits + live_misses;
    std::printf("cache:   %s | live hits %llu misses %llu (%.1f%% hit)"
                " | settled hits %llu misses %llu\n",
                stats.getString("cache_mode", "off").c_str(),
                static_cast<unsigned long long>(live_hits),
                static_cast<unsigned long long>(live_misses),
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(live_hits) /
                                 static_cast<double>(total),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses));

    const JsonValue &prog = mx.at("progress");
    std::printf("slots:   %llu total | %llu running | %llu done\n",
                static_cast<unsigned long long>(
                    prog.getU64("slots", 0)),
                static_cast<unsigned long long>(
                    prog.getU64("running", 0)),
                static_cast<unsigned long long>(
                    prog.getU64("done", 0)));
    for (const JsonValue &s : prog.at("running_slots").asArray()) {
        std::printf("  slot %4llu  %-40.40s %7.1f Mcycle %7.1f "
                    "Minstr %6.1fs\n",
                    static_cast<unsigned long long>(
                        s.getU64("slot", 0)),
                    s.getString("job", "?").c_str(),
                    static_cast<double>(s.getU64("cycles", 0)) / 1e6,
                    static_cast<double>(
                        s.getU64("instructions", 0)) /
                        1e6,
                    s.at("host_s").asDouble());
    }
    std::fflush(stdout);
}

/** One-shot rendering of the daemon's health op: the operator (or
 *  CI) question is "alive, current, durable?" — drain state, queue
 *  occupancy, and journal integrity including lost appends. */
void
renderHealth(const std::string &socket_path, const JsonValue &h)
{
    std::printf("spt_sweepd @ %s\n", socket_path.c_str());
    const char *state = h.getBool("draining", false) ? "draining"
                        : h.getBool("stopping", false)
                            ? "stopping"
                            : "serving";
    std::printf("state:   %s | up %.1fs | workers %llu\n", state,
                h.at("uptime_seconds").asDouble(),
                static_cast<unsigned long long>(
                    h.getU64("workers", 0)));
    const uint64_t inflight = h.getU64("inflight_batch", 0);
    char inflight_str[32] = "none";
    if (inflight != 0)
        std::snprintf(inflight_str, sizeof inflight_str, "#%llu",
                      static_cast<unsigned long long>(inflight));
    std::printf("queue:   %llu queued (max %llu) | in-flight %s | "
                "%llu live batch(es)\n",
                static_cast<unsigned long long>(
                    h.getU64("queue_depth", 0)),
                static_cast<unsigned long long>(
                    h.getU64("max_queue", 0)),
                inflight_str,
                static_cast<unsigned long long>(
                    h.getU64("live_batches", 0)));
    std::printf("counts:  %llu executed | %llu recovered | "
                "%llu overloaded reject(s) | %llu dedup hit(s)\n",
                static_cast<unsigned long long>(
                    h.getU64("batches_executed", 0)),
                static_cast<unsigned long long>(
                    h.getU64("recovered_batches", 0)),
                static_cast<unsigned long long>(
                    h.getU64("overloaded_rejects", 0)),
                static_cast<unsigned long long>(
                    h.getU64("dedup_hits", 0)));
    std::printf("cache:   %s %s\n",
                h.getString("cache_mode", "off").c_str(),
                h.getString("cache_dir", "").c_str());
    const JsonValue &j = h.at("journal");
    if (!j.getBool("enabled", false)) {
        std::printf("journal: off\n");
    } else {
        std::printf("journal: %s | %llu bytes | %llu live | "
                    "%llu incomplete | %llu write failure(s)\n",
                    j.getString("dir", "?").c_str(),
                    static_cast<unsigned long long>(
                        j.getU64("bytes", 0)),
                    static_cast<unsigned long long>(
                        j.getU64("live_batches", 0)),
                    static_cast<unsigned long long>(
                        j.getU64("incomplete_batches", 0)),
                    static_cast<unsigned long long>(
                        j.getU64("write_failures", 0)));
        const JsonValue &r = j.at("recovered");
        std::printf("recovery: %llu batch(es) replayed | "
                    "%llu record(s) | %llu byte(s) dropped\n",
                    static_cast<unsigned long long>(
                        r.getU64("batches", 0)),
                    static_cast<unsigned long long>(
                        r.getU64("records", 0)),
                    static_cast<unsigned long long>(
                        r.getU64("dropped_bytes", 0)));
    }
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    return toolMain("spt_top", [&]() -> int {
        std::string socket_path;
        bool once = false;
        bool prometheus = false;
        bool health = false;
        unsigned interval_s = 2;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--socket") {
                if (i + 1 >= argc)
                    SPT_FATAL("--socket requires a path");
                socket_path = argv[++i];
            } else if (arg == "--once") {
                once = true;
            } else if (arg == "--prometheus") {
                prometheus = true;
            } else if (arg == "--health") {
                health = true;
            } else if (arg == "--interval") {
                if (i + 1 >= argc)
                    SPT_FATAL("--interval requires seconds");
                interval_s = static_cast<unsigned>(parseUnsigned(
                    argv[++i], "--interval", 3600));
            } else {
                SPT_FATAL("unknown argument " << arg
                          << " (expected --socket PATH [--once] "
                             "[--prometheus] [--health] "
                             "[--interval SEC])");
            }
        }
        if (socket_path.empty())
            SPT_FATAL("usage: spt_top --socket PATH [--once] "
                      "[--prometheus] [--health] [--interval SEC]");

        if (health) {
            // One-shot by design: health is a probe, not a watch.
            const JsonValue hv = parseJson(serviceRequest(
                socket_path, "{\"op\": \"health\"}"));
            if (!hv.getBool("ok", false))
                SPT_FATAL("health op failed: "
                          << hv.getString("error", "?"));
            renderHealth(socket_path, hv);
            return 0;
        }

        for (;;) {
            if (prometheus) {
                const JsonValue mv = parseJson(serviceRequest(
                    socket_path,
                    "{\"op\": \"metrics\", "
                    "\"format\": \"prometheus\"}"));
                if (!mv.getBool("ok", false))
                    SPT_FATAL("metrics op failed: "
                              << mv.getString("error", "?"));
                std::fputs(mv.getString("text", "").c_str(),
                           stdout);
                std::fflush(stdout);
            } else {
                const JsonValue sv = parseJson(serviceRequest(
                    socket_path, "{\"op\": \"stats\"}"));
                const JsonValue mv = parseJson(serviceRequest(
                    socket_path, "{\"op\": \"metrics\"}"));
                if (!sv.getBool("ok", false) ||
                    !mv.getBool("ok", false))
                    SPT_FATAL("daemon answered with an error");
                if (!once && ::isatty(STDOUT_FILENO))
                    std::printf("\033[2J\033[H");
                std::printf("spt_sweepd @ %s\n",
                            socket_path.c_str());
                renderSample(sv, mv);
            }
            if (once)
                return 0;
            std::this_thread::sleep_for(
                std::chrono::seconds(interval_s));
        }
    });
}
