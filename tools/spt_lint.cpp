/**
 * @file
 * Static constant-time lint driver: builds the CFG, runs the
 * knowledge-propagation pass and the secret-flow lint over bundled
 * workloads, the Section 9.1 attack programs, or an assembly file,
 * and prints per-instruction findings. It is also the knowledge-map
 * compiler: `--emit-knowledge-map` lowers the fixpoint into the
 * binary artifact the SPT engine consumes at rename (DESIGN.md §13).
 *
 * Usage:
 *   spt_lint [options] <target>...
 *     <target>        workload name, attack program name
 *                     ("spectre-v1", "ct-victim"), `all`, or a
 *                     path to a `.s` assembly file
 *   --window=N        speculation-window budget (default 100)
 *   --print-knowledge print per-instruction operand knowledge
 *   --json            machine-readable report on stdout instead of
 *                     the human text (same exit codes)
 *   --emit-knowledge-map=FILE
 *                     compile the target's kRobust facts into a
 *                     binary knowledge map (exactly one target)
 *   --map-json=FILE   also dump the map as JSON (exactly one target)
 *   --map-vp-model=spectre|futuristic|any
 *                     VP model recorded in the map (default any:
 *                     robust facts are model-independent)
 *   --check-bundled   CI gate: lint every bundled constant-time
 *                     kernel (must be clean) and attack program
 *                     (must have at least one secret-dependent
 *                     transmitter finding); exit 1 on violation
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/knowledge_analysis.h"
#include "analysis/knowledge_map.h"
#include "analysis/secret_flow.h"
#include "common/cli.h"
#include "common/json.h"
#include "common/logging.h"
#include "isa/assembler.h"
#include "workloads/attack_programs.h"
#include "workloads/workloads.h"

namespace {

using namespace spt;

struct Options {
    unsigned window = 100;
    bool print_knowledge = false;
    bool check_bundled = false;
    bool json = false;
    std::string emit_map;
    std::string map_json;
    KnowledgeVpModel vp_model = KnowledgeVpModel::kAny;
    std::vector<std::string> targets;
};

struct LintReport {
    size_t findings = 0;
    size_t transient_only = 0;
};

Program
loadTarget(const std::string &name)
{
    if (name == "spectre-v1")
        return makeSpectreV1().program;
    if (name == "ct-victim")
        return makeCtVictim().program;
    if (name.size() > 2 &&
        name.compare(name.size() - 2, 2, ".s") == 0) {
        std::ifstream in(name);
        if (!in)
            SPT_FATAL("cannot open " << name);
        std::ostringstream text;
        text << in.rdbuf();
        return assemble(text.str());
    }
    return workloadByName(name).program;
}

/** Lints one program; findings go to stdout as text, or into @p jw
 *  as one element of an open array when --json is active. */
LintReport
lintProgram(const std::string &name, const Program &prog,
            const Options &opts, JsonWriter *jw)
{
    const Cfg cfg(prog);
    const SecretFlowLint lint(cfg, {opts.window});

    if (jw) {
        jw->beginObject();
        jw->field("name", name);
        jw->field("instructions", prog.size());
        jw->field("blocks",
                  static_cast<uint64_t>(cfg.blocks().size()));
        jw->field("secret_ranges",
                  static_cast<uint64_t>(prog.secretRanges().size()));
    } else {
        std::cout << "== " << name << ": " << prog.size()
                  << " instructions, " << cfg.blocks().size()
                  << " blocks, " << prog.secretRanges().size()
                  << " secret range(s)\n";
    }

    if (opts.print_knowledge) {
        const KnowledgeAnalysis ka(cfg);
        if (jw)
            jw->key("knowledge").beginArray();
        for (uint64_t pc = 0; pc < prog.size(); ++pc) {
            const auto claims = ka.claimsAt(pc);
            if (jw) {
                jw->beginObject();
                jw->field("pc", pc);
                jw->field("instruction", toString(prog.at(pc)));
                jw->field("reachable", ka.inState(pc) != nullptr);
                jw->key("claims").beginArray();
                if (ka.inState(pc))
                    for (const SlotClaim &c : claims) {
                        jw->beginObject();
                        jw->field("slot", uint64_t{c.slot});
                        jw->field("level", toString(c.level));
                        jw->endObject();
                    }
                jw->endArray();
                jw->endObject();
                continue;
            }
            std::cout << "  " << pc << ":\t"
                      << toString(prog.at(pc));
            if (!ka.inState(pc)) {
                std::cout << "\t; unreachable";
            } else {
                for (const SlotClaim &c : claims)
                    std::cout << "\t; src" << unsigned(c.slot)
                              << "=" << toString(c.level);
            }
            std::cout << "\n";
        }
        if (jw)
            jw->endArray();
    }

    LintReport rep;
    if (jw)
        jw->key("findings").beginArray();
    for (const LintFinding &f : lint.findings()) {
        ++rep.findings;
        if (f.transient_only)
            ++rep.transient_only;
        if (jw) {
            jw->beginObject();
            jw->field("pc", f.pc);
            jw->field("kind", toString(f.kind));
            jw->field("transient_only", f.transient_only);
            jw->field("instruction", toString(f.si));
            jw->field("detail", f.detail);
            jw->endObject();
        } else {
            std::cout << "  pc " << f.pc << ": " << toString(f.kind)
                      << (f.transient_only ? " [transient]" : "")
                      << " in `" << toString(f.si) << "` ("
                      << f.detail << ")\n";
        }
    }
    if (jw) {
        jw->endArray();
        jw->field("num_findings",
                  static_cast<uint64_t>(rep.findings));
        jw->field("transient_only",
                  static_cast<uint64_t>(rep.transient_only));
        jw->endObject();
    } else {
        std::cout << "  -> " << rep.findings << " finding(s), "
                  << rep.transient_only << " transient-only\n";
    }
    return rep;
}

int
checkBundled(const Options &opts, JsonWriter *jw)
{
    bool ok = true;
    for (const std::string &name : ctWorkloadNames()) {
        const LintReport rep = lintProgram(
            name, workloadByName(name).program, opts, jw);
        if (rep.findings != 0) {
            std::cerr << "FAIL: constant-time kernel " << name
                      << " has " << rep.findings << " finding(s)\n";
            ok = false;
        }
    }
    const std::pair<std::string, Program> attacks[] = {
        {"spectre-v1", makeSpectreV1().program},
        {"ct-victim", makeCtVictim().program},
    };
    for (const auto &[name, prog] : attacks) {
        const LintReport rep = lintProgram(name, prog, opts, jw);
        if (rep.findings == 0) {
            std::cerr << "FAIL: attack program " << name
                      << " produced no findings\n";
            ok = false;
        }
    }
    if (!jw)
        std::cout << (ok ? "check-bundled: OK\n"
                         : "check-bundled: FAILED\n");
    return ok ? 0 : 1;
}

/** Compiles and writes the knowledge-map artifact(s) for the single
 *  target program. */
void
emitMapArtifacts(const std::string &name, const Program &prog,
                 const Options &opts)
{
    const Cfg cfg(prog);
    const KnowledgeAnalysis analysis(cfg);
    const KnowledgeMap map = emitKnowledgeMap(analysis, opts.vp_model);
    if (!opts.emit_map.empty()) {
        map.saveToFile(opts.emit_map);
        std::cerr << "spt_lint: wrote knowledge map for " << name
                  << " (" << map.totalFacts() << " robust fact(s) at "
                  << map.coveredPcs() << " pc(s), vp-model "
                  << toString(map.vpModel()) << ") to "
                  << opts.emit_map << "\n";
    }
    if (!opts.map_json.empty()) {
        std::ofstream os(opts.map_json);
        if (!os)
            SPT_FATAL("cannot write " << opts.map_json);
        os << map.toJson(&prog) << "\n";
        std::cerr << "spt_lint: wrote knowledge map JSON to "
                  << opts.map_json << "\n";
    }
}

KnowledgeVpModel
parseVpModel(const std::string &s)
{
    if (s == "spectre")
        return KnowledgeVpModel::kSpectre;
    if (s == "futuristic")
        return KnowledgeVpModel::kFuturistic;
    if (s == "any")
        return KnowledgeVpModel::kAny;
    SPT_FATAL("--map-vp-model must be spectre|futuristic|any, got '"
              << s << "'");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    // Exit codes: 0 clean, 1 findings / check-bundled failure, 2
    // usage errors (unknown workload or file, malformed --window=),
    // 70 internal errors — see common/cli.h.
    return toolMain("spt_lint", [&] {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--window=", 0) == 0) {
            opts.window = static_cast<unsigned>(parseUnsigned(
                arg.substr(9), "--window=", 1'000'000));
        } else if (arg == "--print-knowledge") {
            opts.print_knowledge = true;
        } else if (arg == "--check-bundled") {
            opts.check_bundled = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg.rfind("--emit-knowledge-map=", 0) == 0) {
            opts.emit_map = arg.substr(21);
        } else if (arg.rfind("--map-json=", 0) == 0) {
            opts.map_json = arg.substr(11);
        } else if (arg.rfind("--map-vp-model=", 0) == 0) {
            opts.vp_model = parseVpModel(arg.substr(15));
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: spt_lint [--window=N] "
                   "[--print-knowledge] [--json] "
                   "[--emit-knowledge-map=FILE] [--map-json=FILE] "
                   "[--map-vp-model=spectre|futuristic|any] "
                   "[--check-bundled] "
                   "[<workload>|spectre-v1|ct-victim|all|file.s]...\n";
            return 0;
        } else {
            opts.targets.push_back(arg);
        }
    }

    const bool emitting =
        !opts.emit_map.empty() || !opts.map_json.empty();
    if (emitting &&
        (opts.check_bundled || opts.targets.size() != 1 ||
         opts.targets[0] == "all")) {
        std::cerr << "spt_lint: --emit-knowledge-map/--map-json "
                     "need exactly one target\n";
        return 2;
    }

    JsonWriter jw;
    JsonWriter *out = nullptr;
    if (opts.json) {
        out = &jw;
        jw.beginObject();
        jw.field("tool", "spt_lint");
        jw.field("window", uint64_t{opts.window});
        jw.key("programs").beginArray();
    }

    int rc;
    if (opts.check_bundled) {
        rc = checkBundled(opts, out);
    } else if (opts.targets.empty()) {
        std::cerr << "spt_lint: no target (try --help)\n";
        return 2;
    } else {
        size_t total = 0;
        for (const std::string &t : opts.targets) {
            if (t == "all") {
                for (const Workload &w : allWorkloads())
                    total += lintProgram(w.name, w.program, opts,
                                         out)
                                 .findings;
                total += lintProgram("spectre-v1",
                                     makeSpectreV1().program, opts,
                                     out)
                             .findings;
                total += lintProgram("ct-victim",
                                     makeCtVictim().program, opts,
                                     out)
                             .findings;
            } else {
                const Program prog = loadTarget(t);
                total += lintProgram(t, prog, opts, out).findings;
                if (emitting)
                    emitMapArtifacts(t, prog, opts);
            }
        }
        rc = total == 0 ? 0 : 1;
    }

    if (out) {
        jw.endArray();
        jw.field("exit_code", rc);
        jw.endObject();
        std::cout << jw.str() << "\n";
    }
    return rc;
    });
}
