/**
 * @file
 * Static constant-time lint driver: builds the CFG, runs the
 * knowledge-propagation pass and the secret-flow lint over bundled
 * workloads, the Section 9.1 attack programs, or an assembly file,
 * and prints per-instruction findings.
 *
 * Usage:
 *   spt_lint [options] <target>...
 *     <target>        workload name, attack program name
 *                     ("spectre-v1", "ct-victim"), `all`, or a
 *                     path to a `.s` assembly file
 *   --window=N        speculation-window budget (default 100)
 *   --print-knowledge print per-instruction operand knowledge
 *   --check-bundled   CI gate: lint every bundled constant-time
 *                     kernel (must be clean) and attack program
 *                     (must have at least one secret-dependent
 *                     transmitter finding); exit 1 on violation
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/knowledge_analysis.h"
#include "analysis/secret_flow.h"
#include "common/cli.h"
#include "common/logging.h"
#include "isa/assembler.h"
#include "workloads/attack_programs.h"
#include "workloads/workloads.h"

namespace {

using namespace spt;

struct Options {
    unsigned window = 100;
    bool print_knowledge = false;
    bool check_bundled = false;
    std::vector<std::string> targets;
};

struct LintReport {
    size_t findings = 0;
    size_t transient_only = 0;
};

Program
loadTarget(const std::string &name)
{
    if (name == "spectre-v1")
        return makeSpectreV1().program;
    if (name == "ct-victim")
        return makeCtVictim().program;
    if (name.size() > 2 &&
        name.compare(name.size() - 2, 2, ".s") == 0) {
        std::ifstream in(name);
        if (!in)
            SPT_FATAL("cannot open " << name);
        std::ostringstream text;
        text << in.rdbuf();
        return assemble(text.str());
    }
    return workloadByName(name).program;
}

LintReport
lintProgram(const std::string &name, const Program &prog,
            const Options &opts)
{
    const Cfg cfg(prog);
    const SecretFlowLint lint(cfg, {opts.window});

    std::cout << "== " << name << ": " << prog.size()
              << " instructions, " << cfg.blocks().size()
              << " blocks, " << prog.secretRanges().size()
              << " secret range(s)\n";

    if (opts.print_knowledge) {
        const KnowledgeAnalysis ka(cfg);
        for (uint64_t pc = 0; pc < prog.size(); ++pc) {
            std::cout << "  " << pc << ":\t"
                      << toString(prog.at(pc));
            const auto claims = ka.claimsAt(pc);
            if (!ka.inState(pc)) {
                std::cout << "\t; unreachable";
            } else {
                for (const SlotClaim &c : claims)
                    std::cout << "\t; src" << unsigned(c.slot)
                              << "=" << toString(c.level);
            }
            std::cout << "\n";
        }
    }

    LintReport rep;
    for (const LintFinding &f : lint.findings()) {
        ++rep.findings;
        if (f.transient_only)
            ++rep.transient_only;
        std::cout << "  pc " << f.pc << ": " << toString(f.kind)
                  << (f.transient_only ? " [transient]" : "")
                  << " in `" << toString(f.si) << "` (" << f.detail
                  << ")\n";
    }
    std::cout << "  -> " << rep.findings << " finding(s), "
              << rep.transient_only << " transient-only\n";
    return rep;
}

int
checkBundled(const Options &opts)
{
    bool ok = true;
    for (const std::string &name : ctWorkloadNames()) {
        const LintReport rep =
            lintProgram(name, workloadByName(name).program, opts);
        if (rep.findings != 0) {
            std::cerr << "FAIL: constant-time kernel " << name
                      << " has " << rep.findings << " finding(s)\n";
            ok = false;
        }
    }
    const std::pair<std::string, Program> attacks[] = {
        {"spectre-v1", makeSpectreV1().program},
        {"ct-victim", makeCtVictim().program},
    };
    for (const auto &[name, prog] : attacks) {
        const LintReport rep = lintProgram(name, prog, opts);
        if (rep.findings == 0) {
            std::cerr << "FAIL: attack program " << name
                      << " produced no findings\n";
            ok = false;
        }
    }
    std::cout << (ok ? "check-bundled: OK\n"
                     : "check-bundled: FAILED\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    // Exit codes: 0 clean, 1 findings / check-bundled failure, 2
    // usage errors (unknown workload or file, malformed --window=),
    // 70 internal errors — see common/cli.h.
    return toolMain("spt_lint", [&] {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--window=", 0) == 0) {
            opts.window = static_cast<unsigned>(parseUnsigned(
                arg.substr(9), "--window=", 1'000'000));
        } else if (arg == "--print-knowledge") {
            opts.print_knowledge = true;
        } else if (arg == "--check-bundled") {
            opts.check_bundled = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: spt_lint [--window=N] "
                   "[--print-knowledge] [--check-bundled] "
                   "[<workload>|spectre-v1|ct-victim|all|file.s]...\n";
            return 0;
        } else {
            opts.targets.push_back(arg);
        }
    }

    if (opts.check_bundled)
        return checkBundled(opts);
    if (opts.targets.empty()) {
        std::cerr << "spt_lint: no target (try --help)\n";
        return 2;
    }

    size_t total = 0;
    for (const std::string &t : opts.targets) {
        if (t == "all") {
            for (const Workload &w : allWorkloads())
                total += lintProgram(w.name, w.program, opts)
                             .findings;
            total +=
                lintProgram("spectre-v1", makeSpectreV1().program,
                            opts)
                    .findings;
            total += lintProgram("ct-victim",
                                 makeCtVictim().program, opts)
                         .findings;
        } else {
            total += lintProgram(t, loadTarget(t), opts).findings;
        }
    }
    return total == 0 ? 0 : 1;
    });
}
