/**
 * @file
 * Simulator checkpoint driver (PR-6): create, resume, and inspect
 * full-machine snapshots (sim/snapshot.h).
 *
 *   spt_ckpt run    --workload <name> --checkpoint-at <retires>
 *                   --snapshot <path> [--config <table2-name>]
 *                   [--threat-model spectre|futuristic]
 *                   [--max-cycles N] [--fast-forward]
 *                   [--stats <path>]
 *   spt_ckpt resume --workload <name> --snapshot <path>
 *                   [--config <table2-name>]
 *                   [--threat-model spectre|futuristic]
 *                   [--max-cycles N] [--fast-forward]
 *                   [--stats <path>]
 *   spt_ckpt info   --snapshot <path>
 *
 * `run` executes the workload with the checkpoint drain barrier
 * armed at the given retire count, serializes the snapshot when the
 * barrier fires, and then continues to completion. `resume` restores
 * the snapshot into a freshly configured simulator and runs to
 * completion; because a cold `run` passes through the very same
 * barrier, its end-of-run stats are byte-identical to the resumed
 * run's — the determinism gates compare the two `--stats` files with
 * cmp. `info` prints the snapshot header.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.h"
#include "common/json.h"
#include "common/logging.h"
#include "sim/simulator.h"
#include "sim/snapshot.h"
#include "workloads/workloads.h"

using namespace spt;

namespace {

struct Options {
    std::string command;
    std::string workload;
    std::string config = "SPT{Bwd,ShadowL1}";
    std::string threat_model = "spectre";
    std::string snapshot;
    std::string stats_out;
    uint64_t checkpoint_at = 0;
    uint64_t max_cycles = 500'000'000;
    bool fast_forward = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s run    --workload <name> --checkpoint-at <n>\n"
        "                 --snapshot <path> [options]\n"
        "       %s resume --workload <name> --snapshot <path> "
        "[options]\n"
        "       %s info   --snapshot <path>\n"
        "options:\n"
        "  --config <name>       Table-2 engine config (default\n"
        "                        SPT{Bwd,ShadowL1}; see spt_run)\n"
        "  --threat-model <m>    spectre | futuristic\n"
        "  --max-cycles <n>      cycle budget\n"
        "  --fast-forward        skip provably dead cycles\n"
        "  --stats <path>        write end-of-run stats.json\n",
        argv0, argv0, argv0);
    std::exit(2);
}

std::string
needValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage(argv[0]);
    return argv[++i];
}

Options
parse(int argc, char **argv)
{
    Options opt;
    if (argc < 2)
        usage(argv[0]);
    opt.command = argv[1];
    if (opt.command != "run" && opt.command != "resume" &&
        opt.command != "info")
        usage(argv[0]);
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--workload")
            opt.workload = needValue(argc, argv, i);
        else if (a == "--config")
            opt.config = needValue(argc, argv, i);
        else if (a == "--threat-model")
            opt.threat_model = needValue(argc, argv, i);
        else if (a == "--snapshot")
            opt.snapshot = needValue(argc, argv, i);
        else if (a == "--stats")
            opt.stats_out = needValue(argc, argv, i);
        else if (a == "--checkpoint-at")
            opt.checkpoint_at = parseUnsigned(
                needValue(argc, argv, i), "--checkpoint-at");
        else if (a == "--max-cycles")
            opt.max_cycles = parseUnsigned(needValue(argc, argv, i),
                                           "--max-cycles");
        else if (a == "--fast-forward")
            opt.fast_forward = true;
        else if (a == "--help" || a == "-h")
            usage(argv[0]);
        else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage(argv[0]);
        }
    }
    if (opt.snapshot.empty())
        usage(argv[0]);
    if (opt.command != "info" && opt.workload.empty())
        usage(argv[0]);
    if (opt.command == "run" && opt.checkpoint_at == 0)
        usage(argv[0]);
    return opt;
}

SimConfig
buildConfig(const Options &opt)
{
    SimConfig cfg;
    bool found = false;
    for (const NamedConfig &nc : table2Configs())
        if (nc.name == opt.config) {
            cfg.engine = nc.engine;
            found = true;
            break;
        }
    if (!found)
        SPT_FATAL("unknown config '" << opt.config
                  << "' (see table2Configs; e.g. SPT{Bwd,ShadowL1})");
    if (opt.threat_model == "spectre")
        cfg.core.attack_model = AttackModel::kSpectre;
    else if (opt.threat_model == "futuristic")
        cfg.core.attack_model = AttackModel::kFuturistic;
    else
        SPT_FATAL("unknown threat model: " << opt.threat_model);
    cfg.max_cycles = opt.max_cycles;
    cfg.core.fast_forward = opt.fast_forward;
    return cfg;
}

void
printSummary(const Options &opt, const Simulator &sim,
             const SimResult &r)
{
    std::printf("workload      %s\n", opt.workload.c_str());
    std::printf("config        %s\n", opt.config.c_str());
    std::printf("numCycles     %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("termination   %s\n",
                terminationName(r.termination));
    if (!opt.stats_out.empty()) {
        JsonWriter jw;
        jw.beginObject();
        jw.field("numCycles", r.cycles);
        jw.key("stats");
        sim.dumpStatsJson(jw);
        jw.endObject();
        writeReportFile(opt.stats_out, jw.str() + "\n");
        std::printf("stats written to %s\n", opt.stats_out.c_str());
    }
}

int
cmdRun(const Options &opt)
{
    const Workload &w = workloadByName(opt.workload);
    SimConfig cfg = buildConfig(opt);
    cfg.checkpoint_at_retires = opt.checkpoint_at;
    Simulator sim(w.program, cfg);
    std::ofstream snap(opt.snapshot, std::ios::binary);
    if (!snap)
        SPT_FATAL("cannot write " << opt.snapshot);
    sim.writeSnapshotTo(&snap);
    const SimResult r = sim.run();
    if (r.instructions < opt.checkpoint_at)
        SPT_FATAL("workload retired only " << r.instructions
                  << " instructions — the checkpoint barrier at "
                  << opt.checkpoint_at << " was never reached");
    snap.close();
    if (!snap)
        SPT_FATAL("snapshot write to " << opt.snapshot << " failed");
    std::printf("snapshot written to %s (barrier at %llu retires)\n",
                opt.snapshot.c_str(),
                static_cast<unsigned long long>(opt.checkpoint_at));
    printSummary(opt, sim, r);
    return r.halted ? 0 : 1;
}

int
cmdResume(const Options &opt)
{
    const Workload &w = workloadByName(opt.workload);
    const SimConfig cfg = buildConfig(opt);
    Simulator sim(w.program, cfg);
    std::ifstream snap(opt.snapshot, std::ios::binary);
    if (!snap)
        SPT_FATAL("cannot open snapshot " << opt.snapshot);
    sim.restoreSnapshot(snap);
    const SimResult r = sim.run();
    printSummary(opt, sim, r);
    return r.halted ? 0 : 1;
}

int
cmdInfo(const Options &opt)
{
    std::ifstream snap(opt.snapshot, std::ios::binary);
    if (!snap)
        SPT_FATAL("cannot open snapshot " << opt.snapshot);
    const SnapshotInfo info = Snapshotter::info(snap);
    std::printf("version     %u\n", info.version);
    std::printf("cycle       %llu\n",
                static_cast<unsigned long long>(info.cycle));
    std::printf("retired     %llu\n",
                static_cast<unsigned long long>(info.retired));
    std::printf("engine      %s\n", info.engine_name.c_str());
    std::printf("code_size   %llu\n",
                static_cast<unsigned long long>(info.code_size));
    std::printf("entry       %llu\n",
                static_cast<unsigned long long>(info.entry));
    std::printf("data_bytes  %llu\n",
                static_cast<unsigned long long>(info.data_bytes));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    // Exit codes: 0 the run halted (or info succeeded), 1 it did
    // not, 2 usage/environment errors, 70 internal errors — see
    // common/cli.h.
    return toolMain("spt_ckpt", [&] {
        const Options opt = parse(argc, argv);
        if (opt.command == "run")
            return cmdRun(opt);
        if (opt.command == "resume")
            return cmdResume(opt);
        return cmdInfo(opt);
    });
}
