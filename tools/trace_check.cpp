/**
 * @file
 * Trace-consistency checker for text traces produced by
 * `spt_run --trace` (sim/trace.h). Verifies, per instruction:
 * cycles are non-decreasing, fetch comes first, nothing follows
 * retire/squash, and every delay-start interval is closed by a
 * delay-end, delay-squash, or delay-unfinished marker. CI runs it
 * on the traced smoke workload.
 *
 *   trace_check <trace.txt> [<trace.txt> ...]
 *   trace_check -              (read one trace from stdin)
 *
 * Exit codes: 0 all traces consistent, 1 at least one trace is
 * inconsistent, 2 usage/environment errors (no arguments, an
 * unreadable file) — see common/cli.h.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/trace.h"

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <trace.txt> [...]   (- for stdin)\n",
                     argv[0]);
        return 2;
    }
    int failures = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string path = argv[i];
        std::string error;
        bool ok;
        if (path == "-") {
            ok = spt::validateTraceText(std::cin, &error);
        } else {
            std::ifstream in(path);
            if (!in) {
                // Environment error, not a failed check: the caller
                // handed us a path we cannot read.
                std::fprintf(stderr, "trace_check: cannot open %s\n",
                             path.c_str());
                return 2;
            }
            ok = spt::validateTraceText(in, &error);
        }
        if (ok) {
            std::printf("%s: ok\n", path.c_str());
        } else {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         error.c_str());
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}
