/**
 * @file
 * spt_sweepd: the persistent sweep daemon (sweep-as-a-service,
 * DESIGN.md §14; fault tolerance §16). Binds a Unix-domain socket,
 * keeps a worker pool and a warm on-disk result cache, and executes
 * job batches submitted by ExpRunner clients (any bench/driver run
 * with --service SOCK or SPT_SWEEP_SOCKET=SOCK) until it receives a
 * shutdown request — e.g. `spt_sweep --socket SOCK shutdown` — or a
 * SIGTERM.
 *
 *   spt_sweepd --socket /tmp/spt.sock --cache /tmp/spt-cache \
 *              [--journal DIR] [--max-queue N] \
 *              [--request-timeout-ms MS] \
 *              [--jobs N] [--cache-mode read_write|read_only|verify] \
 *              [--event-log FILE] [--event-log-level debug|info|warn] \
 *              [--log-level debug|info|warn]
 *
 * --journal DIR arms the crash-safe batch journal
 * (sim/batch_journal.h): every submit, completed slot and batch
 * completion is durably recorded, and a restarted daemon replays the
 * journal, re-enqueues incomplete batches and re-runs only the slots
 * whose outcomes were lost — byte-identical results to a run that
 * never crashed.
 *
 * Signals: SIGTERM drains — stop admitting submits, finish the
 * in-flight batch, journal the cut point, exit; queued batches run
 * on the next start (with --journal) or are resubmitted by their
 * clients' retry loops (without). SIGINT stops after the current
 * queue drains (same as the shutdown op).
 *
 * --event-log appends one JSONL record per fleet event
 * (submit/batch/sweep/job, DESIGN.md §15) to FILE; the `metrics` op
 * and tools/spt_top expose the live registry either way.
 */

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "common/cli.h"
#include "common/event_log.h"
#include "common/logging.h"
#include "sim/sweep_service.h"

using namespace spt;

int
main(int argc, char **argv)
{
    return toolMain("spt_sweepd", [&]() -> int {
        SweepServiceOptions opt;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value_of = [&](const char *flag) {
                if (i + 1 >= argc)
                    SPT_FATAL(flag << " requires a value");
                return std::string(argv[++i]);
            };
            if (arg == "--socket") {
                opt.socket_path = value_of("--socket");
            } else if (arg == "--jobs") {
                opt.jobs = static_cast<unsigned>(parseUnsigned(
                    value_of("--jobs"), "--jobs", 4096));
            } else if (arg == "--cache") {
                opt.cache_dir = value_of("--cache");
            } else if (arg == "--cache-mode") {
                opt.cache_mode =
                    parseCacheMode(value_of("--cache-mode"));
            } else if (arg == "--journal") {
                opt.journal_dir = value_of("--journal");
            } else if (arg == "--max-queue") {
                opt.max_queue = parseUnsigned(
                    value_of("--max-queue"), "--max-queue",
                    1u << 20);
                if (opt.max_queue == 0)
                    SPT_FATAL("--max-queue must be at least 1");
            } else if (arg == "--request-timeout-ms") {
                opt.request_timeout_ms =
                    static_cast<unsigned>(parseUnsigned(
                        value_of("--request-timeout-ms"),
                        "--request-timeout-ms", 3600u * 1000u));
            } else if (arg == "--event-log") {
                EventLog::global().openFile(
                    value_of("--event-log"));
            } else if (arg == "--event-log-level") {
                EventLog::global().setMinLevel(parseEventLevel(
                    value_of("--event-log-level")));
            } else if (arg == "--log-level") {
                setLogLevel(
                    parseLogLevel(value_of("--log-level")));
            } else {
                SPT_FATAL("unknown argument " << arg
                          << " (expected --socket PATH / --jobs N /"
                             " --cache DIR / --cache-mode MODE /"
                             " --journal DIR / --max-queue N /"
                             " --request-timeout-ms MS /"
                             " --event-log FILE /"
                             " --event-log-level LVL /"
                             " --log-level LVL)");
            }
        }
        if (opt.socket_path.empty())
            SPT_FATAL("--socket PATH is required");

        // Route SIGTERM/SIGINT through a watcher thread: signal
        // handlers cannot safely drain a service (locks, malloc),
        // sigwait() can. Block them before any service thread
        // spawns so every thread inherits the mask.
        sigset_t sigs;
        sigemptyset(&sigs);
        sigaddset(&sigs, SIGTERM);
        sigaddset(&sigs, SIGINT);
        pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

        SweepService service(opt);
        service.start();
        report(std::string("[spt_sweepd] listening on ") +
               opt.socket_path + " (cache " +
               (opt.cache_dir.empty() ? "off" : opt.cache_dir) +
               ", journal " +
               (opt.journal_dir.empty() ? "off" : opt.journal_dir) +
               ")");

        std::atomic<bool> exiting{false};
        std::thread watcher([&] {
            for (;;) {
                int sig = 0;
                if (sigwait(&sigs, &sig) != 0)
                    return;
                if (exiting.load())
                    return;
                if (sig == SIGTERM) {
                    report("[spt_sweepd] SIGTERM: draining");
                    service.drain();
                } else {
                    report("[spt_sweepd] SIGINT: shutting down");
                    service.stop();
                }
            }
        });

        service.wait();
        // Wake the watcher (a blocked signal stays pending until
        // sigwait consumes it) so it can be joined.
        exiting.store(true);
        ::kill(::getpid(), SIGTERM);
        watcher.join();

        const ServiceStats totals = service.stats();
        char line[200];
        std::snprintf(
            line, sizeof line,
            "[spt_sweepd] shut down: %llu batch(es), %llu job(s), "
            "%llu cache hit(s), %llu miss(es), %llu recovered",
            static_cast<unsigned long long>(
                totals.batches_executed),
            static_cast<unsigned long long>(totals.jobs_executed),
            static_cast<unsigned long long>(totals.cache.hits),
            static_cast<unsigned long long>(totals.cache.misses),
            static_cast<unsigned long long>(
                totals.recovered_batches));
        report(line);
        return 0;
    });
}
