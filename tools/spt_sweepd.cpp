/**
 * @file
 * spt_sweepd: the persistent sweep daemon (sweep-as-a-service,
 * DESIGN.md §14). Binds a Unix-domain socket, keeps a worker pool
 * and a warm on-disk result cache, and executes job batches
 * submitted by ExpRunner clients (any bench/driver run with
 * --service SOCK or SPT_SWEEP_SOCKET=SOCK) until it receives a
 * shutdown request — e.g. `spt_sweep --socket SOCK shutdown`.
 *
 *   spt_sweepd --socket /tmp/spt.sock --cache /tmp/spt-cache \
 *              [--jobs N] [--cache-mode read_write|read_only|verify] \
 *              [--event-log FILE] [--event-log-level debug|info|warn] \
 *              [--log-level debug|info|warn]
 *
 * --event-log appends one JSONL record per fleet event
 * (submit/batch/sweep/job, DESIGN.md §15) to FILE; the `metrics` op
 * and tools/spt_top expose the live registry either way.
 */

#include <cstdio>

#include "common/cli.h"
#include "common/event_log.h"
#include "common/logging.h"
#include "sim/sweep_service.h"

using namespace spt;

int
main(int argc, char **argv)
{
    return toolMain("spt_sweepd", [&]() -> int {
        SweepServiceOptions opt;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value_of = [&](const char *flag) {
                if (i + 1 >= argc)
                    SPT_FATAL(flag << " requires a value");
                return std::string(argv[++i]);
            };
            if (arg == "--socket") {
                opt.socket_path = value_of("--socket");
            } else if (arg == "--jobs") {
                opt.jobs = static_cast<unsigned>(parseUnsigned(
                    value_of("--jobs"), "--jobs", 4096));
            } else if (arg == "--cache") {
                opt.cache_dir = value_of("--cache");
            } else if (arg == "--cache-mode") {
                opt.cache_mode =
                    parseCacheMode(value_of("--cache-mode"));
            } else if (arg == "--event-log") {
                EventLog::global().openFile(
                    value_of("--event-log"));
            } else if (arg == "--event-log-level") {
                EventLog::global().setMinLevel(parseEventLevel(
                    value_of("--event-log-level")));
            } else if (arg == "--log-level") {
                setLogLevel(
                    parseLogLevel(value_of("--log-level")));
            } else {
                SPT_FATAL("unknown argument " << arg
                          << " (expected --socket PATH / --jobs N /"
                             " --cache DIR / --cache-mode MODE /"
                             " --event-log FILE /"
                             " --event-log-level LVL /"
                             " --log-level LVL)");
            }
        }
        if (opt.socket_path.empty())
            SPT_FATAL("--socket PATH is required");

        SweepService service(opt);
        service.start();
        report(std::string("[spt_sweepd] listening on ") +
               opt.socket_path + " (cache " +
               (opt.cache_dir.empty() ? "off" : opt.cache_dir) +
               ")");
        service.wait();
        const ServiceStats totals = service.stats();
        char line[160];
        std::snprintf(
            line, sizeof line,
            "[spt_sweepd] shut down: %llu batch(es), %llu job(s), "
            "%llu cache hit(s), %llu miss(es)",
            static_cast<unsigned long long>(
                totals.batches_executed),
            static_cast<unsigned long long>(totals.jobs_executed),
            static_cast<unsigned long long>(totals.cache.hits),
            static_cast<unsigned long long>(totals.cache.misses));
        report(line);
        return 0;
    });
}
