/**
 * @file
 * Fault-injection campaign CLI (sim/chaos.h): stress the simulated
 * machine with seeded timing faults under every protection engine,
 * with the runtime invariant checker attached, and verdict the
 * result.
 *
 *   spt_chaos [--seed N] [--rate-ppm N] [--jobs N]
 *             [--model spectre|futuristic] [--max-cycles N]
 *             [--quick | --full] [--mutate]
 *             [--out FILE] [--diagnostics-dir DIR]
 *
 * --quick (default) campaigns seven small workloads against
 * SPT{Bwd,ShadowL1} / STT / SecureBaseline; --full widens to every
 * Table-2 engine. --mutate appends the negative control: an SPT
 * engine seeded with a known taint bug (leaky memory gate) that the
 * checker must flag — a campaign that cannot catch a planted bug
 * proves nothing by staying silent.
 *
 * Service-layer chaos (sim/service_chaos.h, DESIGN.md §16):
 *
 *   spt_chaos --service [--sweepd PATH] [--work-dir DIR]
 *             [--jobs N] [--deadline SECONDS] [--out FILE]
 *
 * campaigns the *sweep service* instead of the simulated machine:
 * a real spt_sweepd child (resolved from --sweepd, $SPT_SWEEPD_BIN,
 * or next to this binary) is attacked with truncated frames,
 * connection resets, slow-loris stalls, kill -9 plus journaled
 * restart, and journal/cache bit-rot; the verdict is zero divergent
 * results and zero daemon aborts. The service report JSON is not
 * byte-deterministic (retry counts are timing dependent) — CI
 * uploads it as an artifact rather than cmp-pinning it.
 *
 * Exit codes: 0 campaign clean (and, with --mutate, the planted bug
 * was detected); 1 the campaign found divergences/violations or the
 * planted bug escaped; 2 usage errors; 70 internal errors.
 *
 * The fault-campaign JSON (--out, default spt_chaos.json) is
 * byte-identical for any --jobs value; CI pins this with cmp.
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/cli.h"
#include "common/json.h"
#include "common/logging.h"
#include "sim/chaos.h"
#include "sim/service_chaos.h"

using namespace spt;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --seed <n>             campaign base seed (default 1)\n"
        "  --rate-ppm <n>         per-site fault probability, parts\n"
        "                         per million (default 20000)\n"
        "  --jobs <n>             worker threads (default SPT_JOBS /\n"
        "                         hardware)\n"
        "  --model <m>            spectre | futuristic (default\n"
        "                         futuristic)\n"
        "  --max-cycles <n>       per-run cycle budget\n"
        "  --quick                small campaign: 3 engines (default)\n"
        "  --full                 every Table-2 engine\n"
        "  --mutate               append the seeded-bug negative\n"
        "                         control\n"
        "  --out <file>           campaign JSON (default\n"
        "                         spt_chaos.json)\n"
        "  --diagnostics-dir <d>  write per-failure DiagnosticReport\n"
        "                         JSON files\n"
        "  --service              campaign the sweep service instead\n"
        "                         (transport faults, kill -9 +\n"
        "                         journaled restart, bit-rot)\n"
        "  --sweepd <path>        spt_sweepd binary for --service\n"
        "                         (default: $SPT_SWEEPD_BIN, then a\n"
        "                         sibling of this binary)\n"
        "  --work-dir <d>         --service scratch dir (logs,\n"
        "                         journals, caches; kept for CI\n"
        "                         upload)\n"
        "  --deadline <s>         --service per-scenario client\n"
        "                         budget, seconds (default 120)\n",
        argv0);
    std::exit(2);
}

std::string
needValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage(argv[0]);
    return argv[++i];
}

/** "a/b/c" -> "a_b_c" so a cell label can name a file. */
std::string
fileSafe(const std::string &label)
{
    std::string out = label;
    for (char &c : out)
        if (c == '/' || c == '{' || c == '}' || c == ',')
            c = '_';
    return out;
}

struct Options {
    ChaosConfig cfg;
    bool full = false;
    std::string out_path = "spt_chaos.json";
    std::string diagnostics_dir;
    bool service = false;
    ServiceChaosConfig service_cfg;
};

/** Strict argument parsing; runs inside the toolMain guard so a
 *  parseUnsigned FatalError exits 2 instead of escaping main. */
Options
parse(int argc, char **argv)
{
    Options opt;
    ChaosConfig &cfg = opt.cfg;
    bool &full = opt.full;
    std::string &out_path = opt.out_path;
    std::string &diagnostics_dir = opt.diagnostics_dir;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--seed")
            cfg.seed = parseUnsigned(needValue(argc, argv, i),
                                     "--seed");
        else if (a == "--rate-ppm")
            cfg.rate_ppm = static_cast<uint32_t>(
                parseUnsigned(needValue(argc, argv, i),
                              "--rate-ppm", 1'000'000));
        else if (a == "--jobs")
            cfg.jobs = static_cast<unsigned>(
                parseUnsigned(needValue(argc, argv, i), "--jobs",
                              1024));
        else if (a == "--model") {
            const std::string m = needValue(argc, argv, i);
            if (m == "spectre")
                cfg.model = AttackModel::kSpectre;
            else if (m == "futuristic")
                cfg.model = AttackModel::kFuturistic;
            else {
                std::fprintf(stderr, "unknown model: %s\n",
                             m.c_str());
                usage(argv[0]);
            }
        } else if (a == "--max-cycles")
            cfg.max_cycles = parseUnsigned(
                needValue(argc, argv, i), "--max-cycles");
        else if (a == "--quick")
            full = false;
        else if (a == "--full")
            full = true;
        else if (a == "--mutate")
            cfg.mutate = true;
        else if (a == "--out")
            out_path = needValue(argc, argv, i);
        else if (a == "--diagnostics-dir")
            diagnostics_dir = needValue(argc, argv, i);
        else if (a == "--service")
            opt.service = true;
        else if (a == "--sweepd")
            opt.service_cfg.sweepd_binary =
                needValue(argc, argv, i);
        else if (a == "--work-dir")
            opt.service_cfg.work_dir = needValue(argc, argv, i);
        else if (a == "--deadline") {
            opt.service_cfg.deadline_seconds = parseDouble(
                needValue(argc, argv, i), "--deadline");
            if (opt.service_cfg.deadline_seconds <= 0.0)
                SPT_FATAL("--deadline must be positive");
        } else if (a == "--help" || a == "-h")
            usage(argv[0]);
        else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage(argv[0]);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    return toolMain("spt_chaos", [&] {
        const Options opt = parse(argc, argv);

        if (opt.service) {
            ServiceChaosConfig scfg = opt.service_cfg;
            if (opt.cfg.jobs != 0)
                scfg.daemon_jobs = opt.cfg.jobs;
            const ServiceChaosResult r =
                runServiceChaosCampaign(scfg);
            const std::string out = opt.out_path == "spt_chaos.json"
                                        ? "spt_service_chaos.json"
                                        : opt.out_path;
            writeReportFile(out, r.json);
            std::printf("service chaos: %llu scenario(s)\n",
                        static_cast<unsigned long long>(
                            r.summary.scenarios));
            std::printf("  divergent results    : %llu\n",
                        static_cast<unsigned long long>(
                            r.summary.divergent_results));
            std::printf("  daemon aborts        : %llu\n",
                        static_cast<unsigned long long>(
                            r.summary.daemon_aborts));
            std::printf("  scenario failures    : %llu\n",
                        static_cast<unsigned long long>(
                            r.summary.failures));
            std::printf("report written to %s\n", out.c_str());
            if (!r.summary.clean())
                std::printf("campaign verdict: DIRTY\n");
            return r.summary.clean() ? 0 : 1;
        }

        ChaosConfig cfg = opt.cfg;
        const bool full = opt.full;
        const std::string &out_path = opt.out_path;
        const std::string &diagnostics_dir = opt.diagnostics_dir;
        cfg.workloads = quickChaosWorkloads();
        cfg.engines = full ? table2Configs() : chaosEngines();
        const ChaosResult result = runChaosCampaign(cfg);
        const ChaosSummary &sum = result.summary;

        writeReportFile(out_path, result.json);
        if (!diagnostics_dir.empty() &&
            !result.diagnostics.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(diagnostics_dir,
                                                ec);
            if (ec)
                SPT_FATAL("cannot create " << diagnostics_dir
                                           << ": " << ec.message());
            for (const auto &[label, json] : result.diagnostics)
                writeReportFile(diagnostics_dir + "/" +
                                    fileSafe(label) + ".json",
                                json);
        }

        std::printf("chaos campaign: %llu runs, %llu faults "
                    "injected\n",
                    static_cast<unsigned long long>(sum.runs),
                    static_cast<unsigned long long>(
                        sum.faults_injected));
        std::printf("  invariant violations : %llu\n",
                    static_cast<unsigned long long>(
                        sum.violations));
        std::printf("  arch divergences     : %llu\n",
                    static_cast<unsigned long long>(
                        sum.arch_divergences));
        std::printf("  failed runs          : %llu\n",
                    static_cast<unsigned long long>(sum.failures));
        if (sum.mutation_ran)
            std::printf("  seeded bug detected  : %s\n",
                        sum.mutation_detected ? "yes" : "NO");
        std::printf("report written to %s\n", out_path.c_str());

        bool ok = sum.clean();
        if (sum.mutation_ran && !sum.mutation_detected)
            ok = false;
        if (!ok)
            std::printf("campaign verdict: DIRTY\n");
        return ok ? 0 : 1;
    });
}
