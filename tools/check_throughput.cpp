/**
 * @file
 * Host-throughput regression gate: compares the per-config
 * aggregate Minstr/s of two BENCH_throughput.json artifacts
 * (bench/bench_sim_throughput.cpp) and fails if any config in
 * `head` is slower than `base` by more than the tolerance. CI runs
 * it base-vs-head on pull requests to catch accidental hot-path
 * regressions — e.g. observability hooks that are no longer free
 * when disabled.
 *
 *   check_throughput <base.json> <head.json> [--tolerance PCT]
 *
 * The artifacts are this repo's own JsonWriter output (one
 * key/value per line), so a line scan suffices: a config's
 * aggregate is the "minstr_per_sec" line immediately following its
 * "name" line (workload-level entries are separated by the
 * instructions/cycles fields and are deliberately skipped — they
 * are too small to time stably).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

namespace {

/** Extracts the quoted value of `"key": "value"` or the number of
 *  `"key": value` from one artifact line; empty if no match. */
std::string
lineValue(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\": ";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return "";
    std::string v = line.substr(pos + needle.size());
    while (!v.empty() && (v.back() == ',' || v.back() == '\r'))
        v.pop_back();
    if (v.size() >= 2 && v.front() == '"' && v.back() == '"')
        v = v.substr(1, v.size() - 2);
    return v;
}

std::map<std::string, double>
configRates(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        std::exit(2);
    }
    std::map<std::string, double> rates;
    std::string line, pending_name;
    while (std::getline(in, line)) {
        const std::string name = lineValue(line, "name");
        if (!name.empty()) {
            pending_name = name;
            continue;
        }
        const std::string rate = lineValue(line, "minstr_per_sec");
        if (!rate.empty() && !pending_name.empty())
            rates[pending_name] = std::strtod(rate.c_str(), nullptr);
        pending_name.clear();
    }
    if (rates.empty()) {
        std::fprintf(stderr, "%s: no per-config minstr_per_sec\n",
                     path.c_str());
        std::exit(2);
    }
    return rates;
}

} // namespace

int
main(int argc, char **argv)
{
    double tolerance_pct = 2.0;
    const char *base_path = nullptr, *head_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--tolerance" && i + 1 < argc) {
            tolerance_pct = std::strtod(argv[++i], nullptr);
        } else if (!base_path) {
            base_path = argv[i];
        } else if (!head_path) {
            head_path = argv[i];
        } else {
            base_path = nullptr;
            break;
        }
    }
    if (!base_path || !head_path) {
        std::fprintf(stderr,
                     "usage: %s <base.json> <head.json> "
                     "[--tolerance PCT]\n",
                     argv[0]);
        return 2;
    }

    const auto base = configRates(base_path);
    const auto head = configRates(head_path);
    int failures = 0;
    std::printf("%-24s %12s %12s %9s\n", "config", "base", "head",
                "delta");
    for (const auto &[name, base_rate] : base) {
        const auto it = head.find(name);
        if (it == head.end()) {
            std::fprintf(stderr, "%s: missing in head artifact\n",
                         name.c_str());
            ++failures;
            continue;
        }
        const double head_rate = it->second;
        const double delta_pct =
            base_rate <= 0.0
                ? 0.0
                : 100.0 * (head_rate - base_rate) / base_rate;
        const bool bad = delta_pct < -tolerance_pct;
        std::printf("%-24s %12.3f %12.3f %+8.1f%%%s\n", name.c_str(),
                    base_rate, head_rate, delta_pct,
                    bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    if (failures) {
        std::fprintf(stderr,
                     "throughput regression beyond %.1f%% tolerance "
                     "(%d config(s))\n",
                     tolerance_pct, failures);
        return 1;
    }
    std::printf("throughput within %.1f%% tolerance\n",
                tolerance_pct);
    return 0;
}
